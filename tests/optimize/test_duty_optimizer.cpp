#include "ldcf/optimize/duty_optimizer.hpp"

#include <gtest/gtest.h>

#include "ldcf/common/error.hpp"
#include "ldcf/theory/link_loss.hpp"
#include "ldcf/topology/generators.hpp"

namespace ldcf::optimize {
namespace {

const std::vector<std::uint32_t> kPeriods{5, 7, 10, 14, 20, 25, 33, 50};

TEST(AnalyticDelay, GrowsWithPeriodAndPackets) {
  const double k = 1.6;
  EXPECT_LT(analytic_delay(298, 10, k, DutyCycle{5}, 0.99),
            analytic_delay(298, 10, k, DutyCycle{50}, 0.99));
  EXPECT_LT(analytic_delay(298, 1, k, DutyCycle{20}, 0.99),
            analytic_delay(298, 100, k, DutyCycle{20}, 0.99));
}

TEST(AnalyticDelay, SinglePacketReducesToCoverTime) {
  const double k = 1.4;
  const DutyCycle duty{20};
  EXPECT_DOUBLE_EQ(
      analytic_delay(298, 1, k, duty, 0.99),
      theory::predicted_coverage_delay(298, 0.99, k, duty));
}

TEST(OptimizeAnalytic, FindsInteriorOptimumWithRealSleepCost) {
  // With a non-zero sleep cost the lifetime gain saturates at long periods
  // while delay keeps growing, so the best gain is at an interior duty.
  sim::EnergyModel energy;
  energy.sleep_cost = 0.01;
  const auto result = optimize_analytic(298, 100, 1.6, kPeriods, energy);
  ASSERT_EQ(result.scanned.size(), kPeriods.size());
  EXPECT_GT(result.best.gain, 0.0);
  EXPECT_GT(result.best.duty.period, kPeriods.front());
  EXPECT_LT(result.best.duty.period, kPeriods.back());
}

TEST(OptimizeAnalytic, HigherDelayWeightPrefersShorterPeriods) {
  sim::EnergyModel energy;
  energy.sleep_cost = 0.01;
  GainModel latency_sensitive;
  latency_sensitive.delay_exponent = 2.0;
  GainModel lifetime_heavy;
  lifetime_heavy.delay_exponent = 0.5;
  const auto fast = optimize_analytic(298, 100, 1.6, kPeriods, energy,
                                      latency_sensitive);
  const auto durable =
      optimize_analytic(298, 100, 1.6, kPeriods, energy, lifetime_heavy);
  EXPECT_LE(fast.best.duty.period, durable.best.duty.period);
}

TEST(OptimizeAnalytic, ScannedPointsAreSelfConsistent) {
  sim::EnergyModel energy;
  const auto result = optimize_analytic(298, 50, 1.5, kPeriods, energy);
  for (const auto& p : result.scanned) {
    EXPECT_GT(p.delay_slots, 0.0);
    EXPECT_GT(p.lifetime_slots, 0.0);
    EXPECT_NEAR(p.gain, p.lifetime_slots / p.delay_slots, 1e-9);
    EXPECT_LE(p.gain, result.best.gain);
  }
  EXPECT_THROW((void)optimize_analytic(298, 50, 1.5, {}, energy),
               InvalidArgument);
}

TEST(OptimizeSimulated, AgreesOnGainShapeWithAnalytic) {
  topology::ClusterConfig config;
  config.base.num_sensors = 60;
  config.base.area_side_m = 260.0;
  config.base.radio.path_loss_exponent = 3.3;
  config.base.seed = 5;
  config.num_clusters = 6;
  config.cluster_sigma_m = 30.0;
  const auto topo = topology::make_clustered(config);

  sim::SimConfig base;
  base.num_packets = 8;
  base.seed = 3;
  base.max_slots = 2'000'000;
  base.energy.sleep_cost = 0.01;
  const auto result = optimize_simulated(topo, "dbao", {0.2, 0.1, 0.05, 0.02},
                                         base);
  ASSERT_EQ(result.scanned.size(), 4u);
  EXPECT_GT(result.best.gain, 0.0);
  // Delay grows monotonically as duty shrinks.
  for (std::size_t i = 1; i < result.scanned.size(); ++i) {
    EXPECT_GT(result.scanned[i].delay_slots,
              result.scanned[i - 1].delay_slots);
  }
  EXPECT_THROW((void)optimize_simulated(topo, "dbao", {}, base),
               InvalidArgument);
}

}  // namespace
}  // namespace ldcf::optimize
