#include "ldcf/common/rng.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace ldcf {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(9);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr std::uint64_t kBound = 10;
  constexpr int kDraws = 100000;
  std::vector<int> hist(kBound, 0);
  for (int i = 0; i < kDraws; ++i) ++hist[rng.below(kBound)];
  for (std::uint64_t b = 0; b < kBound; ++b) {
    EXPECT_NEAR(hist[b], kDraws / kBound, kDraws * 0.01) << "bucket " << b;
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(17);
  constexpr int kDraws = 200000;
  int hits = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(19);
  constexpr int kDraws = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kDraws;
  const double var = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, ForkSeedProducesIndependentStreams) {
  Rng master(23);
  Rng child_a(master.fork_seed());
  Rng child_b(master.fork_seed());
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (child_a.next() == child_b.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(SplitMix64, KnownSequenceIsStable) {
  SplitMix64 sm(0);
  const std::uint64_t first = sm.next();
  SplitMix64 sm2(0);
  EXPECT_EQ(sm2.next(), first);
  EXPECT_NE(sm2.next(), first);
}

}  // namespace
}  // namespace ldcf
