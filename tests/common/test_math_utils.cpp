#include "ldcf/common/math_utils.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "ldcf/common/error.hpp"

namespace ldcf {
namespace {

TEST(CeilLog2, ExactPowers) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(4), 2u);
  EXPECT_EQ(ceil_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1ULL << 40), 40u);
}

TEST(CeilLog2, RoundsUpBetweenPowers) {
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(5), 3u);
  EXPECT_EQ(ceil_log2(1023), 10u);
  EXPECT_EQ(ceil_log2(1025), 11u);
}

TEST(CeilLog2, MatchesFloatingPointDefinition) {
  for (std::uint64_t x = 1; x <= 4096; ++x) {
    const auto expected = static_cast<std::uint32_t>(
        std::ceil(std::log2(static_cast<double>(x)) - 1e-12));
    EXPECT_EQ(ceil_log2(x), expected) << "x=" << x;
  }
}

TEST(CeilLog2, RejectsZero) { EXPECT_THROW((void)ceil_log2(0), InvalidArgument); }

TEST(FloorLog2, Basics) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(4), 2u);
  EXPECT_EQ(floor_log2(1023), 9u);
  EXPECT_THROW((void)floor_log2(0), InvalidArgument);
}

TEST(IsPowerOfTwo, Basics) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(2));
  EXPECT_TRUE(is_power_of_two(256));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_FALSE(is_power_of_two(255));
}

TEST(Bisect, FindsSquareRoot) {
  const double root = bisect([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  EXPECT_NEAR(root, std::sqrt(2.0), 1e-10);
}

TEST(Bisect, FindsRootWithNegativeSlope) {
  const double root = bisect([](double x) { return 1.0 - x; }, 0.0, 5.0);
  EXPECT_NEAR(root, 1.0, 1e-10);
}

TEST(Bisect, ExactEndpointRoot) {
  const double root = bisect([](double x) { return x - 1.0; }, 1.0, 2.0);
  EXPECT_DOUBLE_EQ(root, 1.0);
}

TEST(Bisect, RejectsNonBracketingInterval) {
  EXPECT_THROW((void)bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0),
               InvalidArgument);
  EXPECT_THROW((void)bisect([](double) { return 1.0; }, 2.0, 1.0), InvalidArgument);
}

TEST(MeanOf, Projection) {
  const std::vector<int> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean_of(v, [](int x) { return x; }), 2.5);
  EXPECT_DOUBLE_EQ(mean_of(v, [](int x) { return 2 * x; }), 5.0);
  const std::vector<int> empty;
  EXPECT_DOUBLE_EQ(mean_of(empty, [](int x) { return x; }), 0.0);
}

}  // namespace
}  // namespace ldcf
