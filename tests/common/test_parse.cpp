// Strict scalar parsing (common/parse.hpp): every CLI flag and server
// request field goes through these, so the rejection rules are contract.
#include "ldcf/common/parse.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "ldcf/common/error.hpp"

namespace {

using ldcf::InvalidArgument;
using ldcf::common::parse_double;
using ldcf::common::parse_u32;
using ldcf::common::parse_u64;

TEST(ParseU64, AcceptsPlainDecimals) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("1"), 1u);
  EXPECT_EQ(parse_u64("4096"), 4096u);
  EXPECT_EQ(parse_u64("18446744073709551615"),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(ParseU64, RejectsEmptyAndJunk) {
  EXPECT_THROW((void)parse_u64(""), InvalidArgument);
  EXPECT_THROW((void)parse_u64("abc"), InvalidArgument);
  EXPECT_THROW((void)parse_u64("10x"), InvalidArgument);
  EXPECT_THROW((void)parse_u64("1 "), InvalidArgument);
  EXPECT_THROW((void)parse_u64(" 1"), InvalidArgument);
  EXPECT_THROW((void)parse_u64("0x10"), InvalidArgument);
  EXPECT_THROW((void)parse_u64("1.5"), InvalidArgument);
}

TEST(ParseU64, RejectsSigns) {
  // The historical strtoull path silently wrapped "-1" to 2^64-1.
  EXPECT_THROW((void)parse_u64("-1"), InvalidArgument);
  EXPECT_THROW((void)parse_u64("+1"), InvalidArgument);
}

TEST(ParseU64, RejectsOverflow) {
  EXPECT_THROW((void)parse_u64("18446744073709551616"), InvalidArgument);
  EXPECT_THROW((void)parse_u64("99999999999999999999999"), InvalidArgument);
}

TEST(ParseU64, MessageNamesTheFlag) {
  try {
    (void)parse_u64("oops", "--reps");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("--reps"), std::string::npos) << message;
    EXPECT_NE(message.find("oops"), std::string::npos) << message;
  }
}

TEST(ParseU32, RangeChecksThe32BitTarget) {
  EXPECT_EQ(parse_u32("4294967295"),
            std::numeric_limits<std::uint32_t>::max());
  // The old static_cast<uint32_t>(strtoull(...)) pattern truncated this
  // to 0 silently.
  EXPECT_THROW((void)parse_u32("4294967296"), InvalidArgument);
}

TEST(ParseDouble, AcceptsFiniteNumbers) {
  EXPECT_DOUBLE_EQ(parse_double("0.05"), 0.05);
  EXPECT_DOUBLE_EQ(parse_double("-2.5"), -2.5);
  EXPECT_DOUBLE_EQ(parse_double("1e3"), 1000.0);
  EXPECT_DOUBLE_EQ(parse_double("42"), 42.0);
}

TEST(ParseDouble, RejectsJunkAndNonFinite) {
  EXPECT_THROW((void)parse_double(""), InvalidArgument);
  EXPECT_THROW((void)parse_double("1.5x"), InvalidArgument);
  EXPECT_THROW((void)parse_double(" 1.5"), InvalidArgument);
  EXPECT_THROW((void)parse_double("inf"), InvalidArgument);
  EXPECT_THROW((void)parse_double("nan"), InvalidArgument);
  EXPECT_THROW((void)parse_double("1e999"), InvalidArgument);
}

}  // namespace
