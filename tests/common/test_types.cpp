#include "ldcf/common/types.hpp"

#include <gtest/gtest.h>

namespace ldcf {
namespace {

TEST(DutyCycle, RatioIsReciprocalOfPeriod) {
  EXPECT_DOUBLE_EQ(DutyCycle{20}.ratio(), 0.05);
  EXPECT_DOUBLE_EQ(DutyCycle{50}.ratio(), 0.02);
  EXPECT_DOUBLE_EQ(DutyCycle{1}.ratio(), 1.0);
}

TEST(DutyCycle, FromRatioRoundTrips) {
  EXPECT_EQ(DutyCycle::from_ratio(0.05).period, 20u);
  EXPECT_EQ(DutyCycle::from_ratio(0.02).period, 50u);
  EXPECT_EQ(DutyCycle::from_ratio(0.10).period, 10u);
  EXPECT_EQ(DutyCycle::from_ratio(0.20).period, 5u);
  EXPECT_EQ(DutyCycle::from_ratio(1.0).period, 1u);
}

TEST(DutyCycle, FromRatioHandlesDegenerateInput) {
  EXPECT_EQ(DutyCycle::from_ratio(0.0).period, 1u);
  EXPECT_EQ(DutyCycle::from_ratio(-1.0).period, 1u);
  // Ratios above 1 clamp to the always-on schedule.
  EXPECT_EQ(DutyCycle::from_ratio(2.0).period, 1u);
}

TEST(DutyCycle, PaperOperatingPoints) {
  // The evaluation sweeps duty cycles 2%..20% (Figs. 10-11) and uses 5% by
  // default; make sure those round-trip exactly.
  for (int pct = 2; pct <= 20; ++pct) {
    const auto duty = DutyCycle::from_ratio(pct / 100.0);
    EXPECT_NEAR(duty.ratio(), pct / 100.0, 0.03)
        << "duty " << pct << "% maps to period " << duty.period;
  }
}

TEST(Sentinels, AreDistinctFromValidValues) {
  EXPECT_NE(kNoNode, NodeId{0});
  EXPECT_NE(kNoPacket, PacketId{0});
  EXPECT_NE(kNeverSlot, SlotIndex{0});
}

}  // namespace
}  // namespace ldcf
