// Timeline unit tests: lane registration, ring semantics, labels, the
// null-probe contract, and the Chrome trace_event JSON shape.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ldcf/obs/timeline.hpp"

namespace {

using namespace ldcf;

obs::SpanRecord make_span(const char* name, std::uint64_t start,
                          std::uint64_t dur) {
  obs::SpanRecord span;
  span.name = name;
  span.category = "test";
  span.start_ns = start;
  span.dur_ns = dur;
  return span;
}

TEST(Timeline, RecordsAppearInSnapshotInOrder) {
  obs::Timeline timeline;
  timeline.lane().record_span(make_span("a", 10, 5));
  timeline.lane().record_span(make_span("b", 20, 5));
  timeline.counter("track", 3.0);

  const auto lanes = timeline.snapshot();
  ASSERT_EQ(lanes.size(), 1u);
  ASSERT_EQ(lanes[0].spans.size(), 2u);
  EXPECT_STREQ(lanes[0].spans[0].name, "a");
  EXPECT_STREQ(lanes[0].spans[1].name, "b");
  ASSERT_EQ(lanes[0].counters.size(), 1u);
  EXPECT_STREQ(lanes[0].counters[0].track, "track");
  EXPECT_DOUBLE_EQ(lanes[0].counters[0].value, 3.0);
  EXPECT_EQ(lanes[0].dropped_spans, 0u);
  EXPECT_EQ(timeline.dropped_spans(), 0u);
}

TEST(Timeline, RingKeepsLatestWindowAndCountsDrops) {
  obs::TimelineOptions options;
  options.span_capacity = 4;
  obs::Timeline timeline(options);
  for (std::uint64_t i = 0; i < 10; ++i) {
    timeline.lane().record_span(make_span("s", i, 1));
  }
  const auto lanes = timeline.snapshot();
  ASSERT_EQ(lanes.size(), 1u);
  ASSERT_EQ(lanes[0].spans.size(), 4u);
  // Oldest first within the surviving window: starts 6, 7, 8, 9.
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(lanes[0].spans[i].start_ns, 6 + i);
  }
  EXPECT_EQ(lanes[0].dropped_spans, 6u);
  EXPECT_EQ(timeline.dropped_spans(), 6u);
}

TEST(Timeline, EachThreadGetsItsOwnLane) {
  obs::Timeline timeline;
  timeline.label_current_thread("main");
  timeline.lane().record_span(make_span("main-span", 1, 1));
  std::vector<std::thread> threads;
  for (int w = 0; w < 3; ++w) {
    threads.emplace_back([&timeline, w] {
      timeline.label_current_thread("worker-" + std::to_string(w));
      timeline.lane().record_span(make_span("worker-span", 2, 1));
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(timeline.num_lanes(), 4u);
  const auto lanes = timeline.snapshot();
  std::set<std::string> labels;
  std::set<std::uint32_t> tids;
  for (const auto& lane : lanes) {
    labels.insert(lane.label);
    tids.insert(lane.tid);
    EXPECT_EQ(lane.spans.size(), 1u);
  }
  EXPECT_EQ(labels, (std::set<std::string>{"main", "worker-0", "worker-1",
                                           "worker-2"}));
  EXPECT_EQ(tids.size(), 4u) << "lane tids must be distinct";
}

TEST(Timeline, LaterLabelWins) {
  obs::Timeline timeline;
  timeline.label_current_thread("first");
  timeline.label_current_thread("second");
  timeline.lane().record_span(make_span("s", 0, 1));
  const auto lanes = timeline.snapshot();
  ASSERT_EQ(lanes.size(), 1u);
  EXPECT_EQ(lanes[0].label, "second");
}

TEST(TimelineSpan, NullTimelineIsANoOp) {
  // Must not crash, read a clock, or record anywhere.
  obs::TimelineSpan span(nullptr, "unused", "unused");
  span.arg0("n", 1);
  span.arg1("m", 2);
}

TEST(TimelineSpan, RecordsNameCategoryArgsAndDuration) {
  obs::Timeline timeline;
  {
    obs::TimelineSpan span(&timeline, "work", "cat", "items", 7);
    span.arg1("extra", 9);
  }
  const auto lanes = timeline.snapshot();
  ASSERT_EQ(lanes.size(), 1u);
  ASSERT_EQ(lanes[0].spans.size(), 1u);
  const obs::SpanRecord& rec = lanes[0].spans[0];
  EXPECT_STREQ(rec.name, "work");
  EXPECT_STREQ(rec.category, "cat");
  EXPECT_STREQ(rec.arg0_name, "items");
  EXPECT_EQ(rec.arg0, 7u);
  EXPECT_STREQ(rec.arg1_name, "extra");
  EXPECT_EQ(rec.arg1, 9u);
}

TEST(Timeline, ChromeTraceHasEventsMetadataCountersAndSchema) {
  obs::Timeline timeline;
  timeline.label_current_thread("engine");
  {
    obs::TimelineSpan span(&timeline, "stage", "engine", "slot", 42);
  }
  timeline.counter("engine.packets_covered", 5.0);

  std::ostringstream out;
  timeline.write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // thread_name.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // complete span.
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);  // counter.
  EXPECT_NE(json.find("\"engine\""), std::string::npos);
  EXPECT_NE(json.find("\"stage\""), std::string::npos);
  EXPECT_NE(json.find("\"engine.packets_covered\""), std::string::npos);
  EXPECT_NE(json.find("\"slot\":42"), std::string::npos);
  EXPECT_NE(json.find("ldcf.timeline.v1"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
}

TEST(Timeline, CounterRingDropsAreCountedSeparately) {
  obs::TimelineOptions options;
  options.counter_capacity = 2;
  obs::Timeline timeline(options);
  for (int i = 0; i < 5; ++i) {
    timeline.counter("t", static_cast<double>(i));
  }
  const auto lanes = timeline.snapshot();
  ASSERT_EQ(lanes.size(), 1u);
  ASSERT_EQ(lanes[0].counters.size(), 2u);
  EXPECT_DOUBLE_EQ(lanes[0].counters[0].value, 3.0);
  EXPECT_DOUBLE_EQ(lanes[0].counters[1].value, 4.0);
  EXPECT_EQ(lanes[0].dropped_counters, 3u);
}

}  // namespace
