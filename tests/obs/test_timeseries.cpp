// TimeSeriesObserver unit tests: option validation, window bucketing, the
// closed-form idle-gap settlement (pinned against a brute-force per-slot
// account), auto-coarsening, order-independent merges, the anomaly rules,
// the netmap's deterministic top-K rankings, and the MultiObserver fan-out
// contract with a full observer stack (stats + timeseries + watchdog).
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "ldcf/common/error.hpp"
#include "ldcf/common/rng.hpp"
#include "ldcf/obs/json_writer.hpp"
#include "ldcf/obs/stats_observer.hpp"
#include "ldcf/obs/timeseries.hpp"
#include "ldcf/obs/watchdog.hpp"
#include "ldcf/protocols/registry.hpp"
#include "ldcf/sim/simulator.hpp"
#include "ldcf/sim/trace_observer.hpp"
#include "ldcf/topology/generators.hpp"
#include "ldcf/topology/geometry.hpp"
#include "ldcf/topology/topology.hpp"

namespace {

using namespace ldcf;

/// A line of `n` nodes spaced 10 m apart: a non-degenerate bounding box so
/// the auto heat grid has more than one cell.
topology::Topology line_topology(std::size_t n) {
  std::vector<topology::Point2D> positions(n);
  for (std::size_t i = 0; i < n; ++i) {
    positions[i].x = 10.0 * static_cast<double>(i);
  }
  return topology::Topology(std::move(positions));
}

sim::TxResult unicast(NodeId sender, NodeId receiver, sim::TxOutcome outcome,
                      bool duplicate = false) {
  sim::TxResult result;
  result.intent.sender = sender;
  result.intent.receiver = receiver;
  result.intent.packet = 0;
  result.outcome = outcome;
  result.duplicate = duplicate;
  return result;
}

TEST(TimeSeriesOptions, ValidateRejectsOutOfRangeKnobs) {
  obs::TimeSeriesOptions options;
  EXPECT_NO_THROW(obs::validate(options));  // defaults are legal.
  options.window_slots = 0;
  EXPECT_THROW(obs::validate(options), InvalidArgument);
  options = {};
  options.top_k = 0;
  EXPECT_THROW(obs::validate(options), InvalidArgument);
  options.top_k = 65537;
  EXPECT_THROW(obs::validate(options), InvalidArgument);
  options = {};
  options.max_windows = 1;
  EXPECT_THROW(obs::validate(options), InvalidArgument);
  options = {};
  options.heat_cell = -1.0;
  EXPECT_THROW(obs::validate(options), InvalidArgument);
  options = {};
  options.spike_factor = -0.5;
  EXPECT_THROW(obs::validate(options), InvalidArgument);
  options = {};
  options.spike_baseline_windows = 0;
  EXPECT_THROW(obs::validate(options), InvalidArgument);
  options = {};
  options.outlier_sigma = -3.0;
  EXPECT_THROW(obs::validate(options), InvalidArgument);
}

TEST(TimeSeries, EventsLandInTheirWindows) {
  const topology::Topology topo = line_topology(4);
  obs::TimeSeriesOptions options;
  options.window_slots = 64;
  obs::TimeSeriesObserver observer(topo, options);

  observer.on_generate(0, 0);
  observer.on_generate(1, 63);   // still window 0.
  observer.on_generate(2, 64);   // window 1.
  observer.on_tx_result(unicast(0, 1, sim::TxOutcome::kDelivered), 10);
  observer.on_tx_result(unicast(1, 2, sim::TxOutcome::kCollision), 70);
  observer.on_tx_result(unicast(2, 3, sim::TxOutcome::kDelivered, true), 70);
  observer.on_delivery(1, 0, 0, false, 10);
  observer.on_overhear(3, 0, 0, true, 11);
  observer.on_overhear(3, 0, 0, false, 70);
  // covered_at is t + 1: slot-64 coverage belongs to window 1's last slot.
  observer.on_packet_covered(0, 65);
  observer.on_slot_listeners(5, 3);
  observer.on_slot_listeners(64, 2);

  const obs::TimeSeries& series = observer.series();
  ASSERT_EQ(series.windows.size(), 2u);
  const obs::SeriesWindow& w0 = series.windows[0];
  EXPECT_EQ(w0.generated, 2u);
  EXPECT_EQ(w0.tx_attempts, 1u);
  EXPECT_EQ(w0.delivered, 1u);
  EXPECT_EQ(w0.duplicates, 0u);
  EXPECT_EQ(w0.new_holders, 1u);
  EXPECT_EQ(w0.overhears, 1u);
  EXPECT_EQ(w0.overhears_fresh, 1u);
  EXPECT_EQ(w0.covered, 0u);
  EXPECT_EQ(w0.listen_slots, 3u);
  const obs::SeriesWindow& w1 = series.windows[1];
  EXPECT_EQ(w1.generated, 1u);
  EXPECT_EQ(w1.tx_attempts, 2u);
  EXPECT_EQ(w1.delivered, 1u);
  EXPECT_EQ(w1.duplicates, 1u);
  EXPECT_EQ(w1.collisions, 1u);
  EXPECT_EQ(w1.covered, 1u);
  EXPECT_EQ(w1.overhears, 1u);
  EXPECT_EQ(w1.overhears_fresh, 0u);
  EXPECT_EQ(w1.listen_slots, 2u);
  EXPECT_EQ(series.end_slot, 71u);
}

// The tentpole invariant in miniature: settling a gap through on_idle_gap
// must equal executing every slot of it with on_slot_listeners, for any
// alignment of gap against window grid. Brute force on one observer, the
// closed form on the other, bit-equal windows required.
TEST(TimeSeries, IdleGapSettlementMatchesBruteForcePerSlotAccount) {
  const topology::Topology topo = line_topology(6);
  Rng rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint32_t period = 2 + static_cast<std::uint32_t>(rng.below(9));
    std::vector<std::uint64_t> live(period);
    for (auto& l : live) l = rng.below(7);

    obs::TimeSeriesOptions options;
    options.window_slots = 1 + (rng.below(100));
    obs::TimeSeriesObserver compact(topo, options);
    obs::TimeSeriesObserver dense(topo, options);

    SlotIndex t = rng.below(50);
    for (int gap = 0; gap < 8; ++gap) {
      const SlotIndex from = t;
      const SlotIndex to = from + 1 + (rng.below(300));
      compact.on_idle_gap(from, to, live);
      for (SlotIndex s = from; s < to; ++s) {
        dense.on_slot_listeners(s, live[s % period]);
      }
      t = to + (rng.below(20));
    }

    const auto& cw = compact.series().windows;
    const auto& dw = dense.series().windows;
    ASSERT_EQ(cw.size(), dw.size()) << "trial " << trial;
    for (std::size_t i = 0; i < cw.size(); ++i) {
      EXPECT_EQ(cw[i].listen_slots, dw[i].listen_slots)
          << "trial " << trial << " window " << i;
    }
    EXPECT_EQ(compact.series().end_slot, dense.series().end_slot);
  }
}

TEST(TimeSeries, AutoCoarseningPreservesSumsAndCapsWindowCount) {
  const topology::Topology topo = line_topology(3);
  obs::TimeSeriesOptions options;
  options.window_slots = 1;
  options.max_windows = 4;
  obs::TimeSeriesObserver observer(topo, options);
  for (SlotIndex t = 0; t < 16; ++t) observer.on_generate(0, t);

  const obs::TimeSeries& series = observer.series();
  EXPECT_LE(series.windows.size(), 4u);
  EXPECT_EQ(series.base_window_slots, 1u);
  EXPECT_EQ(series.window_slots, 4u);  // doubled twice past the cap.
  std::uint64_t total = 0;
  for (const auto& w : series.windows) total += w.generated;
  EXPECT_EQ(total, 16u);
  EXPECT_EQ(series.windows[0].generated, 4u);  // slots 0..3 pairwise-merged.
}

TEST(TimeSeries, MergeIsOrderIndependentAndAlignsWidths) {
  obs::TimeSeries fine;
  fine.base_window_slots = fine.window_slots = 32;
  fine.trials = 1;
  fine.end_slot = 128;
  fine.windows.resize(4);
  for (std::size_t i = 0; i < 4; ++i) fine.windows[i].tx_attempts = i + 1;

  obs::TimeSeries coarse;
  coarse.base_window_slots = 32;
  coarse.window_slots = 64;  // base * 2: one auto-coarsen deep.
  coarse.trials = 2;
  coarse.end_slot = 192;
  coarse.windows.resize(3);
  for (std::size_t i = 0; i < 3; ++i) coarse.windows[i].tx_attempts = 100;

  obs::TimeSeries ab = fine;
  ab.merge(coarse);
  obs::TimeSeries ba = coarse;
  ba.merge(fine);

  ASSERT_EQ(ab.windows.size(), ba.windows.size());
  for (std::size_t i = 0; i < ab.windows.size(); ++i) {
    EXPECT_EQ(ab.windows[i].tx_attempts, ba.windows[i].tx_attempts);
  }
  EXPECT_EQ(ab.window_slots, 64u);
  EXPECT_EQ(ab.trials, 3u);
  EXPECT_EQ(ab.end_slot, 192u);
  // The fine side's windows pairwise-merged: (1+2), (3+4), then +100 each.
  EXPECT_EQ(ab.windows[0].tx_attempts, 103u);
  EXPECT_EQ(ab.windows[1].tx_attempts, 107u);
  EXPECT_EQ(ab.windows[2].tx_attempts, 100u);

  obs::TimeSeries alien;
  alien.base_window_slots = alien.window_slots = 48;
  alien.trials = 1;
  alien.windows.resize(1);
  EXPECT_THROW(ab.merge(alien), InvalidArgument);

  obs::TimeSeries empty;
  obs::TimeSeries into_empty;
  into_empty.merge(fine);  // empty absorbs the other side verbatim.
  EXPECT_EQ(into_empty.windows.size(), 4u);
  ab.merge(empty);  // merging an empty series is a no-op.
  EXPECT_EQ(ab.trials, 3u);
}

TEST(TimeSeries, CoverageStallRuleFindsMaximalStreaks) {
  obs::TimeSeries series;
  series.base_window_slots = series.window_slots = 100;
  series.trials = 1;
  series.windows.resize(12);
  series.windows[0].generated = 5;
  series.windows[0].new_holders = 3;
  // Windows 1..8: in flight, zero progress — an 8-window stall.
  series.windows[9].covered = 1;
  series.windows[9].new_holders = 2;

  obs::TimeSeriesOptions options;
  options.stall_windows = 8;
  options.spike_factor = 0.0;   // isolate the stall rule.
  options.outlier_sigma = 0.0;
  const auto found = obs::evaluate_anomalies(series, options, nullptr);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].rule, "coverage_stall");
  EXPECT_EQ(found[0].start_slot, 100u);  // window 1.
  EXPECT_EQ(found[0].value, 8.0);

  options.stall_windows = 9;  // streak too short now.
  EXPECT_TRUE(obs::evaluate_anomalies(series, options, nullptr).empty());
  options.stall_windows = 0;  // rule disabled.
  EXPECT_TRUE(obs::evaluate_anomalies(series, options, nullptr).empty());

  // A trailing stall (no progress window after it) must still flush.
  obs::TimeSeries trailing;
  trailing.base_window_slots = trailing.window_slots = 100;
  trailing.trials = 1;
  trailing.windows.resize(10);
  trailing.windows[0].generated = 1;
  options.stall_windows = 8;
  const auto tail = obs::evaluate_anomalies(trailing, options, nullptr);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].value, 9.0);  // windows 1..9.
}

TEST(TimeSeries, CollisionSpikeRuleComparesAgainstTrailingBaseline) {
  obs::TimeSeries series;
  series.base_window_slots = series.window_slots = 100;
  series.trials = 1;
  series.windows.resize(6);
  for (std::size_t i = 0; i < 5; ++i) {
    series.windows[i].tx_attempts = 100;
    series.windows[i].collisions = 5;  // 5% baseline.
  }
  series.windows[5].tx_attempts = 100;
  series.windows[5].collisions = 40;  // 40% > 4 x 5%.

  obs::TimeSeriesOptions options;
  options.stall_windows = 0;
  options.outlier_sigma = 0.0;
  options.spike_factor = 4.0;
  options.spike_min_attempts = 64;
  const auto found = obs::evaluate_anomalies(series, options, nullptr);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].rule, "collision_spike");
  EXPECT_EQ(found[0].start_slot, 500u);
  EXPECT_DOUBLE_EQ(found[0].value, 0.40);
  EXPECT_DOUBLE_EQ(found[0].baseline, 0.05);

  // Collision-free baseline: the absolute 0.5 fallback applies.
  obs::TimeSeries quiet = series;
  for (std::size_t i = 0; i < 5; ++i) quiet.windows[i].collisions = 0;
  quiet.windows[5].collisions = 49;
  EXPECT_TRUE(obs::evaluate_anomalies(quiet, options, nullptr).empty());
  quiet.windows[5].collisions = 50;
  EXPECT_EQ(obs::evaluate_anomalies(quiet, options, nullptr).size(), 1u);

  // Below min attempts the rule stays silent.
  series.windows[5].tx_attempts = 50;
  EXPECT_TRUE(obs::evaluate_anomalies(series, options, nullptr).empty());
}

TEST(TimeSeries, EnergyOutlierRuleNeedsEnoughNodesAndSpread) {
  obs::TimeSeries series;
  series.trials = 1;
  series.base_window_slots = series.window_slots = 100;
  obs::NetMap map;
  map.trials = 1;
  map.nodes.resize(9);
  for (std::size_t n = 0; n < 8; ++n) map.nodes[n].energy = 100.0;
  map.nodes[8].energy = 5000.0;

  obs::TimeSeriesOptions options;
  options.stall_windows = 0;
  options.spike_factor = 0.0;
  options.outlier_sigma = 2.0;
  const auto found = obs::evaluate_anomalies(series, options, &map);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].rule, "energy_outlier");
  EXPECT_DOUBLE_EQ(found[0].value, 5000.0);
  EXPECT_NE(found[0].message.find("node 8"), std::string::npos);

  map.nodes.resize(7);  // below the 8-node floor.
  EXPECT_TRUE(obs::evaluate_anomalies(series, options, &map).empty());
  EXPECT_TRUE(obs::evaluate_anomalies(series, options, nullptr).empty());
}

TEST(NetMap, TopLinksRankByContentionWithDeterministicTies) {
  obs::NetMap map;
  map.trials = 1;
  map.top_k = 2;
  const auto key = [](NodeId s, NodeId r) {
    return (static_cast<std::uint64_t>(s) << 32) | r;
  };
  map.links[key(1, 2)] = {10, 8, 2, 0, 0, 0};   // contention 2.
  map.links[key(3, 4)] = {20, 10, 5, 3, 2, 0};  // contention 10.
  map.links[key(0, 1)] = {30, 20, 5, 3, 2, 0};  // contention 10, more attempts.
  const auto top = map.top_links();
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, key(0, 1));  // ties break on attempts desc.
  EXPECT_EQ(top[1].first, key(3, 4));

  obs::NetMap other = map;
  map.merge(other);
  EXPECT_EQ(map.trials, 2u);
  EXPECT_EQ(map.links.at(key(1, 2)).attempts, 20u);
  EXPECT_EQ(map.links.at(key(1, 2)).collisions, 4u);

  obs::NetMap misfit;
  misfit.trials = 1;
  misfit.nodes.resize(3);
  EXPECT_THROW(map.merge(misfit), InvalidArgument);
}

TEST(NetMap, ObserverBinsNodesOntoTheHeatGrid) {
  const topology::Topology topo = line_topology(8);
  obs::TimeSeriesOptions options;
  options.heat_cell = 20.0;  // two nodes per cell along the line.
  obs::TimeSeriesObserver observer(topo, options);
  observer.on_tx_result(unicast(0, 1, sim::TxOutcome::kDelivered), 0);
  observer.on_tx_result(unicast(7, 6, sim::TxOutcome::kLostChannel, false), 0);

  const obs::NetMap& map = observer.netmap();
  EXPECT_EQ(map.nodes.size(), 8u);
  std::uint64_t binned = 0;
  for (const auto& cell : map.cells) binned += cell.nodes;
  EXPECT_EQ(binned, 8u);  // every node lands in exactly one cell.
}

// Satellite: the MultiObserver contract with a realistic full stack. Three
// observers (stats + timeseries + watchdog) fan out in registration order,
// none of them forces the dense path, and the run's results are identical
// to an unobserved run.
TEST(MultiObserverStack, ThreeObserverFanOutMatchesBareRun) {
  topology::ClusterConfig gen;
  gen.base.num_sensors = 40;
  gen.base.area_side_m = 200.0;
  gen.base.seed = 5;
  gen.num_clusters = 3;
  gen.cluster_sigma_m = 30.0;
  const topology::Topology topo = topology::make_clustered(gen);
  sim::SimConfig config;
  config.num_packets = 8;
  config.seed = 3;

  auto bare_proto = protocols::make_protocol("dbao");
  const sim::SimResult bare = sim::run_simulation(topo, config, *bare_proto);

  obs::StatsObserver stats(topo.num_nodes(), config.num_packets);
  obs::TimeSeriesOptions series_options;
  series_options.window_slots = 32;
  obs::TimeSeriesObserver series(topo, series_options);
  obs::WatchdogConfig watchdog_config;
  watchdog_config.stall_slot_budget = 1u << 20;
  obs::WatchdogObserver watchdog(watchdog_config);
  watchdog.set_cause_source(&series);
  sim::MultiObserver fan_out;
  fan_out.add(&stats);
  fan_out.add(&series);
  fan_out.add(&watchdog);
  ASSERT_EQ(fan_out.size(), 3u);
  // None of the stack demands dense execution: compact time survives.
  EXPECT_FALSE(fan_out.wants_every_slot());

  auto proto = protocols::make_protocol("dbao");
  const sim::SimResult observed =
      sim::run_simulation(topo, config, *proto, &fan_out);

  EXPECT_EQ(bare.metrics.end_slot, observed.metrics.end_slot);
  EXPECT_EQ(bare.metrics.channel.attempts, observed.metrics.channel.attempts);
  EXPECT_EQ(bare.energy.per_node, observed.energy.per_node);

  // The series observer watched the same run: its totals equal the run's.
  obs::SeriesWindow totals;
  for (const auto& w : series.series().windows) totals.add(w);
  EXPECT_EQ(totals.tx_attempts, observed.metrics.channel.attempts);
  EXPECT_EQ(totals.delivered, observed.metrics.channel.delivered);
  EXPECT_EQ(totals.duplicates, observed.metrics.channel.duplicates);
  EXPECT_EQ(totals.collisions, observed.metrics.channel.collisions);
  EXPECT_EQ(totals.sync_misses, observed.metrics.channel.sync_misses);
  EXPECT_EQ(series.series().end_slot, observed.metrics.end_slot);
  // Windowed listen slots sum to the tally's total listening account.
  std::uint64_t tally_listens = 0;
  for (const auto slots : observed.tally.active_slots) tally_listens += slots;
  EXPECT_EQ(totals.listen_slots, tally_listens);
  // Window count covers the run exactly (the CI smoke invariant).
  const auto& ts = series.series();
  EXPECT_EQ(ts.windows.size(),
            (ts.end_slot + ts.window_slots - 1) / ts.window_slots);

  // Adding a dense-demanding observer flips the veto for the whole stack.
  std::ostringstream sink;
  sim::TraceObserver dense_trace(sink, /*include_idle_slots=*/true);
  fan_out.add(&dense_trace);
  EXPECT_TRUE(fan_out.wants_every_slot());
}

// A tripped watchdog carries the series observer's anomalies as causes.
TEST(MultiObserverStack, WatchdogDiagnosticCarriesSeriesCauses) {
  const topology::Topology topo = line_topology(4);
  obs::TimeSeriesOptions options;
  options.window_slots = 10;
  options.stall_windows = 4;
  obs::TimeSeriesObserver series(topo, options);
  obs::WatchdogConfig config;
  config.stall_slot_budget = 80;
  obs::WatchdogObserver watchdog(config);
  watchdog.set_cause_source(&series);

  // One generation, then silence: the series accumulates a coverage stall
  // while the watchdog's slot budget drains.
  series.on_generate(0, 0);
  watchdog.on_generate(0, 0);
  try {
    for (SlotIndex t = 0; t < 200; ++t) {
      series.on_slot_listeners(t, 2);
      watchdog.on_slot_begin(t, {});
    }
    FAIL() << "expected WatchdogError";
  } catch (const obs::WatchdogError& error) {
    ASSERT_FALSE(error.diagnostic().causes.empty());
    EXPECT_NE(error.diagnostic().causes.front().find("coverage_stall"),
              std::string::npos);
  }
}

TEST(TimeSeries, SerializationEmitsSchemaInvariants) {
  const topology::Topology topo = line_topology(4);
  obs::TimeSeriesOptions options;
  options.window_slots = 16;
  obs::TimeSeriesObserver observer(topo, options);
  observer.on_generate(0, 0);
  observer.on_tx_result(unicast(0, 1, sim::TxOutcome::kDelivered), 3);
  observer.on_slot_listeners(40, 2);

  std::ostringstream out;
  obs::JsonWriter json(out);
  obs::write_timeseries(json, observer.series());
  const std::string text = out.str();
  EXPECT_NE(text.find("\"num_windows\":3"), std::string::npos);
  EXPECT_NE(text.find("\"end_slot\":41"), std::string::npos);
  EXPECT_NE(text.find("\"windows\":["), std::string::npos);
  EXPECT_NE(text.find("\"anomalies\":["), std::string::npos);
  EXPECT_NE(text.find("\"in_flight\":1"), std::string::npos);

  std::ostringstream map_out;
  obs::JsonWriter map_json(map_out);
  obs::write_netmap(map_json, observer.netmap());
  const std::string map_text = map_out.str();
  EXPECT_NE(map_text.find("\"grid\":{"), std::string::npos);
  EXPECT_NE(map_text.find("\"top_links\":["), std::string::npos);
  EXPECT_NE(map_text.find("\"top_nodes\":["), std::string::npos);
}

}  // namespace
