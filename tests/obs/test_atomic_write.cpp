// Atomic artifact writes (obs/atomic_file.hpp): a failed write must never
// leave a partial file — or clobber a complete one — at the target path.
#include "ldcf/obs/atomic_file.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "ldcf/common/error.hpp"

namespace {

namespace fs = std::filesystem;
using ldcf::obs::write_file_atomic;

class AtomicWriteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("ldcf_atomic_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  static std::string slurp(const std::string& file) {
    std::ifstream in(file);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }

  fs::path dir_;
};

TEST_F(AtomicWriteTest, WritesBodyAndRemovesTemp) {
  const std::string target = path("report.json");
  write_file_atomic(target, [](std::ostream& out) { out << "{\"ok\":true}\n"; });
  EXPECT_EQ(slurp(target), "{\"ok\":true}\n");
  EXPECT_FALSE(fs::exists(target + ".tmp"));
}

TEST_F(AtomicWriteTest, ThrowingBodyLeavesNothingBehind) {
  const std::string target = path("report.json");
  EXPECT_THROW(write_file_atomic(target,
                                 [](std::ostream& out) {
                                   out << "{\"partial\":";
                                   throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  EXPECT_FALSE(fs::exists(target));
  EXPECT_FALSE(fs::exists(target + ".tmp"));
}

TEST_F(AtomicWriteTest, ThrowingBodyPreservesExistingContent) {
  const std::string target = path("report.json");
  write_file_atomic(target, [](std::ostream& out) { out << "old\n"; });
  EXPECT_THROW(write_file_atomic(target,
                                 [](std::ostream& out) {
                                   out << "new-but-torn";
                                   throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  EXPECT_EQ(slurp(target), "old\n");
  EXPECT_FALSE(fs::exists(target + ".tmp"));
}

TEST_F(AtomicWriteTest, OverwritesExistingFileCompletely) {
  const std::string target = path("report.json");
  write_file_atomic(target, [](std::ostream& out) {
    out << "a much longer first version that must fully disappear\n";
  });
  write_file_atomic(target, [](std::ostream& out) { out << "short\n"; });
  EXPECT_EQ(slurp(target), "short\n");
}

TEST_F(AtomicWriteTest, UnopenableTempPathThrowsInvalidArgument) {
  const std::string target = path("no_such_subdir") + "/report.json";
  EXPECT_THROW(
      write_file_atomic(target, [](std::ostream& out) { out << "x"; }),
      ldcf::InvalidArgument);
}

}  // namespace
