#include "ldcf/obs/stats_observer.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "ldcf/protocols/registry.hpp"
#include "ldcf/sim/simulator.hpp"
#include "ldcf/topology/generators.hpp"

namespace ldcf::obs {
namespace {

topology::Topology small_topology() {
  topology::ClusterConfig config;
  config.base.num_sensors = 40;
  config.base.area_side_m = 200.0;
  config.base.radio.path_loss_exponent = 3.3;
  config.base.seed = 9;
  config.num_clusters = 4;
  return topology::make_clustered(config);
}

sim::SimConfig small_config() {
  sim::SimConfig config;
  config.num_packets = 8;
  config.duty = DutyCycle{10};
  config.seed = 3;
  config.max_slots = 2'000'000;
  return config;
}

sim::SimResult observed_run(const std::string& protocol,
                            const sim::SimConfig& config,
                            StatsObserver& stats) {
  const auto topo = small_topology();
  const auto proto = protocols::make_protocol(protocol);
  return sim::run_simulation(topo, config, *proto, &stats);
}

// The tentpole acceptance criterion: the per-packet delay histogram's
// total count equals the number of covered packets, and every counter in
// the tx breakdown matches the engine's own channel accounting.
TEST(StatsObserver, RegistryMatchesEngineAccounting) {
  const sim::SimConfig config = small_config();
  const auto topo = small_topology();
  StatsObserver stats(topo.num_nodes(), config.num_packets);
  const sim::SimResult res = observed_run("dbao", config, stats);
  const MetricsRegistry& reg = stats.registry();

  std::uint64_t covered = 0;
  for (const auto& rec : res.metrics.packets) {
    if (rec.covered()) ++covered;
  }
  ASSERT_GT(covered, 0u);
  EXPECT_EQ(reg.histograms().at("delay.total").count(), covered);
  EXPECT_EQ(stats.registry().counter("packets.covered").value(), covered);
  EXPECT_EQ(stats.registry().counter("packets.generated").value(),
            config.num_packets);

  const auto& c = res.metrics.channel;
  EXPECT_EQ(stats.registry().counter("tx.attempts").value(), c.attempts);
  EXPECT_EQ(stats.registry().counter("tx.delivered").value(), c.delivered);
  EXPECT_EQ(stats.registry().counter("tx.duplicate").value(), c.duplicates);
  EXPECT_EQ(stats.registry().counter("tx.link_loss").value(), c.losses);
  EXPECT_EQ(stats.registry().counter("tx.collision").value(), c.collisions);
  EXPECT_EQ(stats.registry().counter("tx.receiver_busy").value(),
            c.receiver_busy);
  EXPECT_EQ(stats.registry().counter("tx.broadcast").value(), c.broadcasts);
  EXPECT_EQ(stats.registry().counter("tx.sync_miss").value(), c.sync_misses);
  EXPECT_EQ(stats.registry().counter("delivery.overheard").value(),
            c.overhear_deliveries);

  EXPECT_EQ(stats.registry().counter("slots.simulated").value(),
            res.metrics.end_slot);
  EXPECT_EQ(stats.registry().counter("runs.total").value(), 1u);
  EXPECT_EQ(stats.registry().counter("runs.truncated").value(),
            res.metrics.truncated ? 1u : 0u);
}

TEST(StatsObserver, DelayHistogramMeanMatchesScalarMetrics) {
  const sim::SimConfig config = small_config();
  const auto topo = small_topology();
  StatsObserver stats(topo.num_nodes(), config.num_packets);
  const sim::SimResult res = observed_run("opt", config, stats);
  ASSERT_TRUE(res.metrics.all_covered);
  const Histogram& total = stats.registry().histogram("delay.total");
  // Integer slot delays sum exactly in a double, so the histogram mean is
  // bit-identical to the scalar metric.
  EXPECT_DOUBLE_EQ(total.mean(), res.metrics.mean_total_delay());
  const Histogram& queueing = stats.registry().histogram("delay.queueing");
  const Histogram& transmission =
      stats.registry().histogram("delay.transmission");
  // Integer-slot identity: queueing + transmission = total, per packet.
  EXPECT_EQ(queueing.count(), total.count());
  EXPECT_EQ(transmission.count(), total.count());
  EXPECT_DOUBLE_EQ(queueing.sum() + transmission.sum(), total.sum());
}

TEST(StatsObserver, EnergyHistogramCoversEveryNode) {
  const sim::SimConfig config = small_config();
  const auto topo = small_topology();
  StatsObserver stats(topo.num_nodes(), config.num_packets);
  const sim::SimResult res = observed_run("dbao", config, stats);
  const Histogram& energy = stats.registry().histogram("energy.per_node");
  EXPECT_EQ(energy.count(), topo.num_nodes());
  EXPECT_NEAR(energy.sum(), res.energy.total, 1e-9 * res.energy.total);
  EXPECT_DOUBLE_EQ(energy.max(), res.energy.max_node);
}

TEST(StatsObserver, PerHopDeliveriesMatchDeliveryCounters) {
  const sim::SimConfig config = small_config();
  const auto topo = small_topology();
  StatsObserver stats(topo.num_nodes(), config.num_packets);
  (void)observed_run("dbao", config, stats);
  const auto& reg = stats.registry();
  // Every fresh delivery (unicast or overheard) contributes one per-hop
  // latency sample.
  EXPECT_EQ(reg.histograms().at("delay.per_hop").count(),
            reg.counters().at("delivery.unicast").value() +
                reg.counters().at("delivery.overheard").value());
}

// Separate runs merge exactly: the merged registry is the same as one
// observer watching both runs back to back.
TEST(StatsObserver, RegistriesMergeAcrossRuns) {
  sim::SimConfig config = small_config();
  const auto topo = small_topology();

  StatsObserver first(topo.num_nodes(), config.num_packets);
  (void)observed_run("dbao", config, first);
  config.seed += 1;
  StatsObserver second(topo.num_nodes(), config.num_packets);
  (void)observed_run("dbao", config, second);

  MetricsRegistry merged;
  merged.merge(first.registry());
  merged.merge(second.registry());
  EXPECT_EQ(merged.counter("runs.total").value(), 2u);
  EXPECT_EQ(merged.counter("tx.attempts").value(),
            first.registry().counter("tx.attempts").value() +
                second.registry().counter("tx.attempts").value());
  EXPECT_EQ(merged.histogram("delay.total").count(),
            first.registry().histogram("delay.total").count() +
                second.registry().histogram("delay.total").count());
  EXPECT_EQ(merged.histogram("energy.per_node").count(),
            2u * topo.num_nodes());
}

// MultiObserver fan-out: both observers see the identical event stream,
// and a null observer is ignored.
TEST(MultiObserver, FansOutToEveryRegisteredObserver) {
  const sim::SimConfig config = small_config();
  const auto topo = small_topology();
  StatsObserver a(topo.num_nodes(), config.num_packets);
  StatsObserver b(topo.num_nodes(), config.num_packets);
  sim::MultiObserver fan_out;
  fan_out.add(&a);
  fan_out.add(nullptr);
  fan_out.add(&b);
  EXPECT_EQ(fan_out.size(), 2u);
  const auto proto = protocols::make_protocol("dbao");
  (void)sim::run_simulation(topo, config, *proto, &fan_out);
  EXPECT_GT(a.registry().counter("tx.attempts").value(), 0u);
  EXPECT_EQ(a.registry().counter("tx.attempts").value(),
            b.registry().counter("tx.attempts").value());
  EXPECT_EQ(a.registry().histogram("delay.total").count(),
            b.registry().histogram("delay.total").count());
}

}  // namespace
}  // namespace ldcf::obs
