#include "ldcf/obs/report.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "ldcf/common/error.hpp"
#include "ldcf/obs/stats_observer.hpp"
#include "ldcf/protocols/registry.hpp"
#include "ldcf/sim/simulator.hpp"
#include "ldcf/topology/generators.hpp"

namespace ldcf::obs {
namespace {

// Structural JSON check: braces/brackets balance outside string literals
// and the document is one top-level value. Not a full parser, but it
// catches every comma/nesting bug the streaming writer could produce.
bool balanced_json(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  bool closed_top = false;
  for (const char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        if (closed_top) return false;
        ++depth;
        break;
      case '}':
      case ']':
        if (--depth < 0) return false;
        if (depth == 0) closed_top = true;
        break;
      case ',':
        if (depth == 0) return false;
        break;
      default:
        break;
    }
  }
  return depth == 0 && !in_string && closed_top;
}

TEST(JsonWriter, EmitsObjectsArraysAndEscapes) {
  std::ostringstream out;
  {
    JsonWriter json(out);
    json.begin_object()
        .field("name", "a\"b\\c\nd")
        .field("count", std::uint64_t{42})
        .field("ratio", 0.5)
        .field("flag", true);
    json.key("items").begin_array().value(std::uint64_t{1}).null().end_array();
    json.end_object();
  }
  EXPECT_EQ(out.str(),
            "{\"name\":\"a\\\"b\\\\c\\nd\",\"count\":42,\"ratio\":0.5,"
            "\"flag\":true,\"items\":[1,null]}");
  EXPECT_TRUE(balanced_json(out.str()));
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object()
      .field("nan", std::nan(""))
      .field("inf", std::numeric_limits<double>::infinity())
      .end_object();
  EXPECT_EQ(out.str(), "{\"nan\":null,\"inf\":null}");
}

TEST(JsonWriter, ControlCharactersEscapeAsUnicode) {
  std::ostringstream out;
  JsonWriter json(out);
  json.value(std::string_view("a\x01z"));
  EXPECT_EQ(out.str(), "\"a\\u0001z\"");
}

TEST(Provenance, CurrentIsPopulated) {
  const Provenance p = Provenance::current();
  // The CMake injection gives real values; the header fallback says
  // "unknown". Either way the fields must not be empty (cxx_flags may be).
  EXPECT_FALSE(p.git_sha.empty());
  EXPECT_FALSE(p.build_type.empty());
  EXPECT_FALSE(p.compiler.empty());
}

TEST(TopologyFingerprint, SensitiveToEveryLinkBit) {
  topology::Topology a{std::vector<topology::Point2D>(3)};
  a.add_link(0, 1, 0.5);
  a.add_link(1, 2, 0.25);
  topology::Topology b{std::vector<topology::Point2D>(3)};
  b.add_link(0, 1, 0.5);
  b.add_link(1, 2, 0.25);
  EXPECT_EQ(topology_fingerprint(a), topology_fingerprint(b));

  topology::Topology prr_changed{std::vector<topology::Point2D>(3)};
  prr_changed.add_link(0, 1, 0.5);
  prr_changed.add_link(1, 2, 0.250000001);
  EXPECT_NE(topology_fingerprint(a), topology_fingerprint(prr_changed));

  topology::Topology extra_node{std::vector<topology::Point2D>(4)};
  extra_node.add_link(0, 1, 0.5);
  extra_node.add_link(1, 2, 0.25);
  EXPECT_NE(topology_fingerprint(a), topology_fingerprint(extra_node));
}

TEST(Histogram, SerializesSparseBins) {
  Histogram h;
  h.record(2.0, 3);
  h.record(50.0);
  std::ostringstream out;
  JsonWriter json(out);
  write_histogram(json, h);
  const std::string text = out.str();
  EXPECT_TRUE(balanced_json(text));
  EXPECT_NE(text.find("\"count\":4"), std::string::npos);
  EXPECT_NE(text.find("{\"lower\":2,\"count\":3}"), std::string::npos);
  EXPECT_NE(text.find("{\"lower\":50,\"count\":1}"), std::string::npos);
  // Sparse: the 62 empty bins serialize nothing.
  EXPECT_EQ(text.find("\"count\":0"), std::string::npos);
}

TEST(RunReport, IsBalancedAndCarriesTheAdvertisedKeys) {
  topology::ClusterConfig gen;
  gen.base.num_sensors = 30;
  gen.base.area_side_m = 180.0;
  gen.base.radio.path_loss_exponent = 3.3;
  gen.base.seed = 5;
  gen.num_clusters = 3;
  const topology::Topology topo = topology::make_clustered(gen);

  sim::SimConfig config;
  config.num_packets = 4;
  config.duty = DutyCycle{10};
  config.seed = 3;
  config.profiling = true;

  StatsObserver stats(topo.num_nodes(), config.num_packets);
  const auto proto = protocols::make_protocol("dbao");
  const sim::SimResult result =
      sim::run_simulation(topo, config, *proto, &stats);

  RunReportContext context;
  context.tool = "test";
  context.protocol = "dbao";
  context.topo = &topo;
  context.config = &config;
  context.result = &result;
  context.metrics = &stats.registry();
  context.wall_seconds = 0.25;

  std::ostringstream out;
  write_run_report(out, context);
  const std::string text = out.str();
  EXPECT_TRUE(balanced_json(text));
  for (const char* key :
       {"\"schema\":\"ldcf.run_report.v1\"", "\"tool\":\"test\"",
        "\"provenance\"", "\"git_sha\"", "\"config\"", "\"seed\":3",
        "\"topology\"", "\"fingerprint\"", "\"result\"", "\"covered_packets\"",
        "\"profiler\"", "\"slots_per_sec\"", "\"metrics\"",
        "\"delay.total\"", "\"energy.per_node\"", "\"tx.attempts\""}) {
    EXPECT_NE(text.find(key), std::string::npos) << "missing " << key;
  }
  // Profiling was on, so the profiler section carries real slot counts.
  EXPECT_NE(text.find("\"enabled\":true"), std::string::npos);

  // A report without the optional registry omits the metrics key.
  context.metrics = nullptr;
  std::ostringstream bare;
  write_run_report(bare, context);
  EXPECT_TRUE(balanced_json(bare.str()));
  EXPECT_EQ(bare.str().find("\"metrics\""), std::string::npos);

  context.result = nullptr;
  std::ostringstream broken;
  EXPECT_THROW(write_run_report(broken, context), InvalidArgument);
}

}  // namespace
}  // namespace ldcf::obs
