// Heartbeat tests: JSONL schema shape, ETA semantics, the observer's done
// record, and the end-to-end experiment wiring.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ldcf/analysis/experiment.hpp"
#include "ldcf/common/error.hpp"
#include "ldcf/obs/heartbeat.hpp"
#include "ldcf/sim/engine.hpp"
#include "ldcf/topology/generators.hpp"

namespace {

using namespace ldcf;

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

TEST(HeartbeatWriter, WritesOneSchemaStampedJsonObjectPerLine) {
  const std::string path = temp_path("ldcf_heartbeat_writer_test.jsonl");
  std::filesystem::remove(path);
  {
    obs::HeartbeatWriter writer(path);
    obs::HeartbeatRecord rec;
    rec.trial = 7;
    rec.label = "dbao-T20-r3";
    rec.slots = 500;
    rec.packets_covered = 2;
    rec.packets_total = 12;
    rec.wall_seconds = 1.5;
    rec.slots_per_sec = 333.3;
    rec.eta_seconds = 7.5;
    writer.write(rec);
    rec.done = true;
    rec.eta_seconds = 0.0;
    writer.write(rec);
  }
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"schema\":\"ldcf.heartbeat.v1\""),
            std::string::npos);
  EXPECT_NE(lines[0].find("\"trial\":7"), std::string::npos);
  EXPECT_NE(lines[0].find("\"label\":\"dbao-T20-r3\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"done\":false"), std::string::npos);
  EXPECT_NE(lines[1].find("\"done\":true"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(HeartbeatWriter, UnknownEtaSerializesAsNull) {
  const std::string path = temp_path("ldcf_heartbeat_eta_test.jsonl");
  std::filesystem::remove(path);
  {
    obs::HeartbeatWriter writer(path);
    obs::HeartbeatRecord rec;  // eta_seconds defaults to -1: unknown.
    writer.write(rec);
  }
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"eta_seconds\":null"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(HeartbeatWriter, ThrowsOnUnopenablePath) {
  EXPECT_THROW(obs::HeartbeatWriter("/nonexistent-dir/hb.jsonl"),
               InvalidArgument);
}

TEST(HeartbeatObserver, EmitsAFinalDoneRecord) {
  const std::string path = temp_path("ldcf_heartbeat_observer_test.jsonl");
  std::filesystem::remove(path);
  {
    obs::HeartbeatWriter writer(path);
    // Huge interval: only the final done record should appear.
    obs::HeartbeatObserver observer(writer, 3, "opt", 12, 3600.0);
    observer.on_packet_covered(0, 10);
    observer.on_packet_covered(1, 20);
    sim::SimResult result;
    result.metrics.end_slot = 4096;
    observer.on_run_end(result);
  }
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"done\":true"), std::string::npos);
  EXPECT_NE(lines[0].find("\"trial\":3"), std::string::npos);
  EXPECT_NE(lines[0].find("\"slots\":4096"), std::string::npos);
  EXPECT_NE(lines[0].find("\"packets_covered\":2"), std::string::npos);
  EXPECT_NE(lines[0].find("\"eta_seconds\":0"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(HeartbeatObserver, RejectsNonPositiveInterval) {
  const std::string path = temp_path("ldcf_heartbeat_interval_test.jsonl");
  std::filesystem::remove(path);
  obs::HeartbeatWriter writer(path);
  EXPECT_THROW(obs::HeartbeatObserver(writer, 0, "x", 1, 0.0),
               InvalidArgument);
  std::filesystem::remove(path);
}

// End-to-end: a multi-trial run_point streams one done record per trial
// into the shared writer, labeled "<protocol>-T<period>-r<rep>".
TEST(Heartbeat, ExperimentStreamsOneDoneRecordPerTrial) {
  const std::string path = temp_path("ldcf_heartbeat_experiment_test.jsonl");
  std::filesystem::remove(path);

  topology::ClusterConfig topo_config;
  topo_config.base.num_sensors = 30;
  topo_config.base.area_side_m = 200.0;
  topo_config.base.seed = 5;
  const topology::Topology topo = topology::make_clustered(topo_config);

  analysis::ExperimentConfig config;
  config.base.num_packets = 3;
  config.base.seed = 3;
  config.repetitions = 3;
  config.threads = 2;
  config.heartbeat_path = path;

  (void)analysis::run_point(topo, "dbao", DutyCycle{10}, config);

  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 3u) << "one done record per repetition";
  std::size_t done = 0;
  for (const std::string& line : lines) {
    EXPECT_NE(line.find("\"schema\":\"ldcf.heartbeat.v1\""),
              std::string::npos);
    EXPECT_NE(line.find("\"label\":\"dbao-T10-r"), std::string::npos);
    if (line.find("\"done\":true") != std::string::npos) ++done;
  }
  EXPECT_EQ(done, 3u);
  std::filesystem::remove(path);
}

}  // namespace
