// Watchdog unit + integration tests: every invariant trips with the right
// diagnostic, progress events reset the budgets, and a healthy end-to-end
// run is never disturbed.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "ldcf/obs/watchdog.hpp"
#include "ldcf/protocols/registry.hpp"
#include "ldcf/sim/engine.hpp"
#include "ldcf/sim/simulator.hpp"
#include "ldcf/topology/generators.hpp"

namespace {

using namespace ldcf;

sim::TxResult failed_tx() {
  sim::TxResult result;
  result.outcome = sim::TxOutcome::kLostChannel;
  return result;
}

TEST(Watchdog, SlotBudgetTripsAfterSilentSlots) {
  obs::WatchdogConfig config;
  config.stall_slot_budget = 10;
  obs::WatchdogObserver watchdog(config);
  try {
    for (SlotIndex t = 0; t < 100; ++t) watchdog.on_slot_begin(t, {});
    FAIL() << "expected WatchdogError";
  } catch (const obs::WatchdogError& error) {
    EXPECT_EQ(error.diagnostic().invariant, "stall");
    EXPECT_EQ(error.diagnostic().slots_since_progress, 11u);
    EXPECT_EQ(error.diagnostic().slot, 10u);
  }
}

TEST(Watchdog, ProgressEventsResetTheSlotBudget) {
  obs::WatchdogConfig config;
  config.stall_slot_budget = 10;
  obs::WatchdogObserver watchdog(config);
  for (SlotIndex t = 0; t < 100; ++t) {
    watchdog.on_slot_begin(t, {});
    if (t % 5 == 0) watchdog.on_generate(0, t);  // progress, budget resets.
  }
  SUCCEED();
}

TEST(Watchdog, CoverageMovingBackwardsTripsMonotonic) {
  obs::WatchdogObserver watchdog(obs::WatchdogConfig{});
  watchdog.on_packet_covered(0, 100);
  try {
    watchdog.on_packet_covered(1, 99);
    FAIL() << "expected WatchdogError";
  } catch (const obs::WatchdogError& error) {
    EXPECT_EQ(error.diagnostic().invariant, "monotonic");
    EXPECT_EQ(error.diagnostic().packets_covered, 1u);
  }
}

TEST(Watchdog, FailureRateDriftTripsOnceArmed) {
  obs::WatchdogConfig config;
  config.max_failure_rate = 0.5;
  config.min_attempts = 20;
  obs::WatchdogObserver watchdog(config);
  // 19 straight failures: rate 1.0, but below min_attempts — still armed.
  for (int i = 0; i < 19; ++i) watchdog.on_tx_result(failed_tx(), 1);
  try {
    watchdog.on_tx_result(failed_tx(), 2);
    FAIL() << "expected WatchdogError";
  } catch (const obs::WatchdogError& error) {
    EXPECT_EQ(error.diagnostic().invariant, "drift");
    EXPECT_EQ(error.diagnostic().tx_attempts, 20u);
    EXPECT_EQ(error.diagnostic().tx_failures, 20u);
  }
}

TEST(Watchdog, NegativeEnergyTripsRunEnd) {
  obs::WatchdogObserver watchdog(obs::WatchdogConfig{});
  sim::SimResult result;
  result.energy.per_node = {1.0, -0.5};
  EXPECT_THROW(watchdog.on_run_end(result), obs::WatchdogError);
}

TEST(Watchdog, TruncationTripsOnlyWhenOptedIn) {
  sim::SimResult result;
  result.metrics.truncated = true;
  {
    obs::WatchdogObserver relaxed(obs::WatchdogConfig{});
    relaxed.on_run_end(result);  // default: truncation is not a failure.
  }
  obs::WatchdogConfig strict;
  strict.fail_on_truncation = true;
  obs::WatchdogObserver watchdog(strict);
  try {
    watchdog.on_run_end(result);
    FAIL() << "expected WatchdogError";
  } catch (const obs::WatchdogError& error) {
    EXPECT_EQ(error.diagnostic().invariant, "run_end");
  }
}

TEST(Watchdog, HealthReportIsSchemaStampedJson) {
  obs::HealthDiagnostic diag;
  diag.invariant = "stall";
  diag.message = "no progress in 64 slots";
  diag.slot = 1234;
  diag.slots_since_progress = 64;
  diag.packets_generated = 12;
  std::ostringstream out;
  obs::write_health_report(out, diag);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"schema\":\"ldcf.health.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"invariant\":\"stall\""), std::string::npos);
  EXPECT_NE(json.find("\"slot\":1234"), std::string::npos);
  EXPECT_NE(json.find("\"slots_since_progress\":64"), std::string::npos);
  EXPECT_NE(json.find("\"packets_generated\":12"), std::string::npos);
  EXPECT_EQ(json.back(), '\n');
}

// A healthy run with sane budgets must complete untouched: the watchdog
// can only end runs, never change them.
TEST(Watchdog, HealthyRunPassesUnderTightScrutiny) {
  topology::ClusterConfig topo_config;
  topo_config.base.num_sensors = 40;
  topo_config.base.area_side_m = 220.0;
  topo_config.base.seed = 5;
  const topology::Topology topo = topology::make_clustered(topo_config);

  sim::SimConfig config;
  config.num_packets = 5;
  config.duty = DutyCycle{10};
  config.seed = 3;

  obs::WatchdogConfig watchdog_config;
  watchdog_config.stall_slot_budget = 1u << 20;
  watchdog_config.max_failure_rate = 0.999;
  watchdog_config.min_attempts = 100;
  obs::WatchdogObserver watchdog(watchdog_config);

  const auto proto = protocols::make_protocol("dbao");
  const sim::SimResult res =
      sim::run_simulation(topo, config, *proto, &watchdog);
  EXPECT_TRUE(res.metrics.all_covered);

  // The same run without the watchdog is bit-identical on the core counts.
  const auto again = protocols::make_protocol("dbao");
  const sim::SimResult bare = sim::run_simulation(topo, config, *again);
  EXPECT_EQ(bare.metrics.end_slot, res.metrics.end_slot);
  EXPECT_EQ(bare.metrics.channel.attempts, res.metrics.channel.attempts);
  EXPECT_DOUBLE_EQ(bare.energy.total, res.energy.total);
}

}  // namespace
