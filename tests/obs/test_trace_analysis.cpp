// Causal trace analytics: the analyzer must agree bit-for-bit with the
// engine's own accounting (StatsObserver / RunMetrics) on real runs,
// reconstruct hand-written synthetic traces exactly, and both pass the
// paper's bounds on reliable-link runs and flag deliberately violating
// traces.
#include "ldcf/obs/trace_analysis.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "ldcf/common/error.hpp"
#include "ldcf/obs/stats_observer.hpp"
#include "ldcf/protocols/registry.hpp"
#include "ldcf/sim/simulator.hpp"
#include "ldcf/sim/trace_observer.hpp"
#include "ldcf/topology/generators.hpp"

namespace {

using namespace ldcf;

// The golden-fingerprint run (see sim/test_golden_metrics.cpp): every
// registered protocol covers this topology/config, so the cross-checks
// exercise unicast, broadcast-only (flash) and overhearing paths.
topology::Topology golden_topology() {
  topology::ClusterConfig config;
  config.base.num_sensors = 60;
  config.base.area_side_m = 260.0;
  config.base.radio.path_loss_exponent = 3.3;
  config.base.seed = 5;
  config.num_clusters = 6;
  config.cluster_sigma_m = 30.0;
  return topology::make_clustered(config);
}

sim::SimConfig golden_config() {
  sim::SimConfig config;
  config.num_packets = 12;
  config.duty = DutyCycle{10};
  config.seed = 3;
  config.max_slots = 2'000'000;
  return config;
}

/// The same graph with every link forced to PRR 1.0 — the reliable-link
/// regime the paper's theory assumes.
topology::Topology reliable_copy(const topology::Topology& topo) {
  std::vector<topology::Point2D> positions;
  positions.reserve(topo.num_nodes());
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    positions.push_back(topo.position(n));
  }
  topology::Topology reliable(std::move(positions));
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    for (const topology::Link& link : topo.neighbors(n)) {
      reliable.add_link(n, link.to, 1.0);
    }
  }
  return reliable;
}

const obs::ConformanceCheck& find_check(const obs::TraceAnalysis& analysis,
                                        const std::string& name) {
  for (const obs::ConformanceCheck& check : analysis.conformance.checks) {
    if (check.name == name) return check;
  }
  ADD_FAILURE() << "missing check " << name;
  static const obs::ConformanceCheck missing{};
  return missing;
}

// Structural JSON check (same idiom as obs/test_report.cpp): braces and
// brackets balance outside strings and the document is one value.
bool balanced_json(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  bool closed_top = false;
  for (const char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        if (closed_top) return false;
        ++depth;
        break;
      case '}':
      case ']':
        if (--depth < 0) return false;
        if (depth == 0) closed_top = true;
        break;
      case ',':
        if (depth == 0) return false;
        break;
      default:
        break;
    }
  }
  return depth == 0 && closed_top;
}

// --- Synthetic trace helpers -----------------------------------------------

sim::TraceEvent generate_event(PacketId packet, SlotIndex slot) {
  sim::TraceEvent ev;
  ev.kind = sim::TraceEvent::Kind::kGenerate;
  ev.packet = packet;
  ev.slot = slot;
  return ev;
}

sim::TraceEvent tx_event(NodeId sender, NodeId receiver, PacketId packet,
                         SlotIndex slot,
                         sim::TxOutcome outcome = sim::TxOutcome::kDelivered) {
  sim::TraceEvent ev;
  ev.kind = sim::TraceEvent::Kind::kTx;
  ev.sender = sender;
  ev.receiver = receiver;
  ev.packet = packet;
  ev.slot = slot;
  ev.outcome = outcome;
  return ev;
}

sim::TraceEvent delivery_event(NodeId node, PacketId packet, NodeId from,
                               SlotIndex slot, bool overheard = false) {
  sim::TraceEvent ev;
  ev.kind = sim::TraceEvent::Kind::kDelivery;
  ev.node = node;
  ev.packet = packet;
  ev.from = from;
  ev.slot = slot;
  ev.overheard = overheard;
  return ev;
}

sim::TraceEvent covered_event(PacketId packet, SlotIndex slot) {
  sim::TraceEvent ev;
  ev.kind = sim::TraceEvent::Kind::kCovered;
  ev.packet = packet;
  ev.slot = slot;
  return ev;
}

sim::TraceEvent run_end_event(SlotIndex end_slot, bool all_covered) {
  sim::TraceEvent ev;
  ev.kind = sim::TraceEvent::Kind::kRunEnd;
  ev.end_slot = end_slot;
  ev.all_covered = all_covered;
  return ev;
}

// --- FlightRecorder --------------------------------------------------------

void expect_same_events(const std::vector<sim::TraceEvent>& a,
                        const std::vector<sim::TraceEvent>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("event " + std::to_string(i));
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].slot, b[i].slot);
    EXPECT_EQ(a[i].active, b[i].active);
    EXPECT_EQ(a[i].sender, b[i].sender);
    EXPECT_EQ(a[i].receiver, b[i].receiver);
    EXPECT_EQ(a[i].node, b[i].node);
    EXPECT_EQ(a[i].from, b[i].from);
    EXPECT_EQ(a[i].packet, b[i].packet);
    EXPECT_EQ(a[i].outcome, b[i].outcome);
    EXPECT_EQ(a[i].duplicate, b[i].duplicate);
    EXPECT_EQ(a[i].overheard, b[i].overheard);
    EXPECT_EQ(a[i].end_slot, b[i].end_slot);
    EXPECT_EQ(a[i].all_covered, b[i].all_covered);
    EXPECT_EQ(a[i].truncated, b[i].truncated);
  }
}

TEST(FlightRecorder, MatchesTraceObserverEventForEvent) {
  const topology::Topology topo = golden_topology();
  const sim::SimConfig config = golden_config();
  for (const bool include_idle : {false, true}) {
    SCOPED_TRACE(include_idle ? "full" : "elided");
    std::stringstream trace;
    sim::TraceObserver observer(trace, include_idle);
    obs::FlightRecorder recorder(include_idle);
    sim::MultiObserver fan_out;
    fan_out.add(&observer);
    fan_out.add(&recorder);
    auto proto = protocols::make_protocol("dbao");
    (void)sim::run_simulation(topo, config, *proto, &fan_out);
    expect_same_events(recorder.events(), sim::read_event_trace(trace));
  }
}

TEST(FlightRecorder, TakeMovesAndClearEmpties) {
  obs::FlightRecorder recorder;
  recorder.on_generate(0, 7);
  ASSERT_EQ(recorder.events().size(), 1u);
  const std::vector<sim::TraceEvent> taken = recorder.take();
  EXPECT_EQ(taken.size(), 1u);
  EXPECT_TRUE(recorder.events().empty());
  recorder.on_generate(1, 9);
  recorder.clear();
  EXPECT_TRUE(recorder.events().empty());
}

// --- Cross-checks against the engine's own accounting ----------------------

TEST(TraceAnalysis, AgreesWithEngineMetricsForEveryProtocol) {
  const topology::Topology topo = golden_topology();
  const sim::SimConfig config = golden_config();
  for (const std::string& name : protocols::protocol_names()) {
    SCOPED_TRACE(name);
    obs::FlightRecorder recorder;
    obs::StatsObserver stats(topo.num_nodes(), config.num_packets);
    sim::MultiObserver fan_out;
    fan_out.add(&recorder);
    fan_out.add(&stats);
    auto proto = protocols::make_protocol(name);
    const sim::SimResult res =
        sim::run_simulation(topo, config, *proto, &fan_out);

    obs::TraceAnalysisOptions options;
    options.num_sensors = topo.num_sensors();
    options.duty_period = config.duty.period;
    const obs::TraceAnalysis analysis =
        obs::analyze_trace(recorder.events(), options);

    // Channel totals, bit-for-bit against RunMetrics.
    const auto& channel = res.metrics.channel;
    EXPECT_EQ(analysis.tx_attempts, channel.attempts);
    EXPECT_EQ(analysis.tx_delivered, channel.delivered);
    EXPECT_EQ(analysis.tx_duplicates, channel.duplicates);
    EXPECT_EQ(analysis.tx_losses, channel.losses);
    EXPECT_EQ(analysis.tx_collisions, channel.collisions);
    EXPECT_EQ(analysis.tx_receiver_busy, channel.receiver_busy);
    EXPECT_EQ(analysis.tx_broadcasts, channel.broadcasts);
    EXPECT_EQ(analysis.tx_sync_misses, channel.sync_misses);
    EXPECT_EQ(analysis.deliveries_overheard, channel.overhear_deliveries);

    // ... and against the StatsObserver registry watching the same run.
    EXPECT_EQ(analysis.tx_attempts,
              stats.registry().counter("tx.attempts").value());
    EXPECT_EQ(analysis.deliveries_overheard,
              stats.registry().counter("delivery.overheard").value());

    // Per-packet: tree node counts are the engine's delivery counts, and
    // the coverage/generation/first-tx slots line up exactly.
    ASSERT_EQ(analysis.trees.size(), res.metrics.packets.size());
    std::uint64_t delivery_sum = 0;
    for (const auto& rec : res.metrics.packets) {
      const obs::DisseminationTree* tree = analysis.tree(rec.packet);
      ASSERT_NE(tree, nullptr);
      EXPECT_EQ(tree->deliveries(), rec.deliveries);
      EXPECT_EQ(tree->generated_at, rec.generated_at);
      EXPECT_EQ(tree->first_tx_at, rec.first_tx_at);
      EXPECT_EQ(tree->covered_at, rec.covered_at);
      delivery_sum += rec.deliveries;
    }
    EXPECT_EQ(analysis.total_deliveries, delivery_sum);

    // Waterfall identity: queueing + blocking is the engine's queueing
    // delay, and the components sum to the total delay.
    ASSERT_EQ(analysis.waterfalls.size(), res.metrics.packets.size());
    for (std::size_t p = 0; p < analysis.waterfalls.size(); ++p) {
      const obs::DelayWaterfall& wf = analysis.waterfalls[p];
      const auto& rec = res.metrics.packets[p];
      EXPECT_EQ(wf.packet, rec.packet);
      EXPECT_EQ(wf.covered, rec.covered());
      if (rec.covered()) {
        EXPECT_EQ(wf.queueing + wf.blocking, rec.queueing_delay());
        EXPECT_EQ(wf.transmission, rec.transmission_delay());
        EXPECT_EQ(wf.total, rec.total_delay());
      }
    }

    // Run scalars.
    EXPECT_TRUE(analysis.has_run_end);
    EXPECT_EQ(analysis.end_slot, res.metrics.end_slot);
    EXPECT_EQ(analysis.all_covered, res.metrics.all_covered);
    EXPECT_EQ(analysis.truncated, res.metrics.truncated);
  }
}

TEST(TraceAnalysis, FileRoundTripMatchesLiveRecorder) {
  const topology::Topology topo = golden_topology();
  const sim::SimConfig config = golden_config();
  const std::string path = testing::TempDir() + "ldcf_analysis_test.jsonl";
  obs::FlightRecorder recorder;
  {
    sim::TraceObserver observer(path);
    sim::MultiObserver fan_out;
    fan_out.add(&observer);
    fan_out.add(&recorder);
    auto proto = protocols::make_protocol("opt");
    (void)sim::run_simulation(topo, config, *proto, &fan_out);
  }
  obs::TraceAnalysisOptions options;
  options.num_sensors = topo.num_sensors();
  options.duty_period = config.duty.period;
  const obs::TraceAnalysis live =
      obs::analyze_trace(recorder.events(), options);
  const obs::TraceAnalysis parsed = obs::analyze_trace_file(path, options);
  std::remove(path.c_str());

  ASSERT_EQ(live.trees.size(), parsed.trees.size());
  EXPECT_EQ(live.measured_fdl, parsed.measured_fdl);
  EXPECT_EQ(live.tx_attempts, parsed.tx_attempts);
  EXPECT_EQ(live.total_deliveries, parsed.total_deliveries);
  EXPECT_EQ(live.conformance.violations(), parsed.conformance.violations());
  for (std::size_t i = 0; i < live.trees.size(); ++i) {
    EXPECT_EQ(live.trees[i].edges.size(), parsed.trees[i].edges.size());
    EXPECT_EQ(live.trees[i].holders, parsed.trees[i].holders);
  }
}

TEST(TraceAnalysis, DerivesSensorCountWhenNotGiven) {
  const topology::Topology topo = golden_topology();
  obs::FlightRecorder recorder;
  auto proto = protocols::make_protocol("opt");
  (void)sim::run_simulation(topo, golden_config(), *proto, &recorder);
  const obs::TraceAnalysis analysis = obs::analyze_trace(recorder.events());
  EXPECT_TRUE(analysis.sensors_derived);
  // The golden run covers all 60 sensors, so the largest id seen is N.
  EXPECT_EQ(analysis.options.num_sensors, topo.num_sensors());
}

// --- Synthetic traces: exact reconstruction --------------------------------

TEST(TraceAnalysis, ReconstructsHandWrittenTree) {
  // Source 0 recruits node 1 (slot 2); both recruit one each in slot 4
  // (nodes 2 and 3); node 5 overhears node 2's copy in slot 6.
  const std::vector<sim::TraceEvent> events = {
      generate_event(0, 0),
      tx_event(0, 1, 0, 2),
      delivery_event(1, 0, 0, 2),
      tx_event(0, 2, 0, 4),
      delivery_event(2, 0, 0, 4),
      tx_event(1, 3, 0, 4),
      delivery_event(3, 0, 1, 4),
      tx_event(2, 4, 0, 6),
      delivery_event(4, 0, 2, 6),
      delivery_event(5, 0, 2, 6, /*overheard=*/true),
      covered_event(0, 6),
      run_end_event(7, true),
  };
  obs::TraceAnalysisOptions options;
  options.num_sensors = 5;
  const obs::TraceAnalysis analysis = obs::analyze_trace(events, options);

  ASSERT_EQ(analysis.trees.size(), 1u);
  const obs::DisseminationTree& tree = analysis.trees[0];
  EXPECT_EQ(tree.packet, 0u);
  EXPECT_EQ(tree.generated_at, 0u);
  EXPECT_EQ(tree.first_tx_at, 2u);
  EXPECT_EQ(tree.covered_at, 6u);
  EXPECT_EQ(tree.deliveries(), 5u);
  EXPECT_EQ(tree.dissemination_slots, 3u);
  EXPECT_EQ(tree.holders, (std::vector<std::uint64_t>{1, 2, 4, 6}));
  EXPECT_EQ(tree.max_depth, 2u);
  EXPECT_EQ(tree.nodes_per_depth, (std::vector<std::uint64_t>{1, 2, 3}));
  // Unicast growth: 1->2 (x2), 2->4 (x2), then one direct + one overheard
  // delivery from 4 holders ((4+1)/4 = 1.25) — the overhear does not count.
  EXPECT_DOUBLE_EQ(tree.max_growth, 2.0);

  ASSERT_EQ(analysis.waterfalls.size(), 1u);
  const obs::DelayWaterfall& wf = analysis.waterfalls[0];
  EXPECT_TRUE(wf.covered);
  EXPECT_EQ(wf.queueing, 2u);
  EXPECT_EQ(wf.blocking, 0u);
  EXPECT_EQ(wf.transmission, 4u);
  EXPECT_EQ(wf.total, 6u);
  EXPECT_EQ(wf.blocking_depth, 0u);

  EXPECT_EQ(analysis.measured_fdl, 6u);
  EXPECT_EQ(analysis.total_deliveries, 5u);
  EXPECT_EQ(analysis.deliveries_overheard, 1u);
}

TEST(TraceAnalysis, DecomposesBlockingFromSourceBusySlots) {
  // Packet 1 waits in [1, 9); the source transmits packet 0 in slots 3 and
  // 5 (two blocking slots, one distinct blocker), so queueing is 8 - 2.
  const std::vector<sim::TraceEvent> events = {
      generate_event(0, 0),
      generate_event(1, 1),
      tx_event(0, 1, 0, 3),
      delivery_event(1, 0, 0, 3),
      tx_event(0, 2, 0, 5),
      delivery_event(2, 0, 0, 5),
      covered_event(0, 5),
      tx_event(0, 1, 1, 9),
      delivery_event(1, 1, 0, 9),
      tx_event(0, 2, 1, 11),
      delivery_event(2, 1, 0, 11),
      covered_event(1, 11),
      run_end_event(12, true),
  };
  obs::TraceAnalysisOptions options;
  options.num_sensors = 2;
  const obs::TraceAnalysis analysis = obs::analyze_trace(events, options);
  ASSERT_EQ(analysis.waterfalls.size(), 2u);
  const obs::DelayWaterfall& wf = analysis.waterfalls[1];
  EXPECT_EQ(wf.blocking, 2u);
  EXPECT_EQ(wf.queueing, 6u);
  EXPECT_EQ(wf.blocking_depth, 1u);
  EXPECT_EQ(wf.transmission, 2u);
  EXPECT_EQ(wf.total, 10u);
}

TEST(TraceAnalysis, RejectsCausallyBrokenTraces) {
  {
    const std::vector<sim::TraceEvent> twice = {generate_event(0, 0),
                                                generate_event(0, 1)};
    EXPECT_THROW((void)obs::analyze_trace(twice), InvalidArgument);
  }
  {
    // Node 2 never obtained the packet, so it cannot be a parent.
    const std::vector<sim::TraceEvent> orphan = {
        generate_event(0, 0), delivery_event(1, 0, 2, 3)};
    EXPECT_THROW((void)obs::analyze_trace(orphan), InvalidArgument);
  }
  {
    const std::vector<sim::TraceEvent> to_source = {
        generate_event(0, 0), delivery_event(0, 0, 1, 3)};
    EXPECT_THROW((void)obs::analyze_trace(to_source), InvalidArgument);
  }
  {
    const std::vector<sim::TraceEvent> duplicate = {
        generate_event(0, 0), delivery_event(1, 0, 0, 3),
        delivery_event(1, 0, 0, 5)};
    EXPECT_THROW((void)obs::analyze_trace(duplicate), InvalidArgument);
  }
}

// --- Conformance: violations detected, reliable runs pass ------------------

TEST(TraceAnalysis, FlagsSyntheticTheoryViolations) {
  // Three direct (non-overheard) recruits from a single holder in one slot
  // breaks Lemma 1's doubling bound; covering the last sensor at slot 400
  // with N = 3, T = 2, M = 1 bursts far past the Theorem 2 envelope.
  const std::vector<sim::TraceEvent> events = {
      generate_event(0, 0),
      tx_event(0, 1, 0, 2),
      delivery_event(1, 0, 0, 2),
      delivery_event(2, 0, 0, 2),
      delivery_event(3, 0, 0, 2),
      covered_event(0, 400),
      run_end_event(401, true),
  };
  obs::TraceAnalysisOptions options;
  options.num_sensors = 3;
  options.duty_period = 2;
  const obs::TraceAnalysis analysis = obs::analyze_trace(events, options);

  const obs::ConformanceCheck& growth =
      find_check(analysis, "lemma12.gw_growth");
  EXPECT_TRUE(growth.applicable);
  EXPECT_FALSE(growth.pass);
  EXPECT_DOUBLE_EQ(growth.measured, 4.0);  // (1 + 3) / 1.

  const obs::ConformanceCheck& fdl =
      find_check(analysis, "theorem2.fdl_envelope");
  EXPECT_TRUE(fdl.applicable);
  EXPECT_FALSE(fdl.pass);
  EXPECT_DOUBLE_EQ(fdl.measured, 400.0);

  EXPECT_FALSE(analysis.conformance.conformant());
  EXPECT_GE(analysis.conformance.violations(), 2u);
}

TEST(TraceAnalysis, FlagsBlockingBeyondCorollary1Window) {
  // N = 40 => m = ceil(log2(41)) = 6, window m - 1 = 5. Generations are
  // spaced a full period apart (the corollary's premise), yet packet 6 is
  // blocked by six distinct earlier packets.
  std::vector<sim::TraceEvent> events;
  const std::uint32_t period = 4;
  for (PacketId p = 0; p < 7; ++p) {
    events.push_back(generate_event(p, p * period));
  }
  // The source services packets 0..5 once each while packet 6 waits...
  for (PacketId p = 0; p < 6; ++p) {
    const SlotIndex slot = 30 + 2 * p;
    events.push_back(tx_event(0, 1 + p, p, slot));
    events.push_back(delivery_event(1 + p, p, 0, slot));
    events.push_back(covered_event(p, slot));
  }
  // ... and only then transmits packet 6.
  events.push_back(tx_event(0, 10, 6, 50));
  events.push_back(delivery_event(10, 6, 0, 50));
  events.push_back(covered_event(6, 50));
  events.push_back(run_end_event(51, true));

  obs::TraceAnalysisOptions options;
  options.num_sensors = 40;
  options.duty_period = period;
  const obs::TraceAnalysis analysis = obs::analyze_trace(events, options);
  const obs::ConformanceCheck& blocking =
      find_check(analysis, "corollary1.blocking_depth");
  EXPECT_TRUE(blocking.applicable);
  EXPECT_FALSE(blocking.pass);
  EXPECT_DOUBLE_EQ(blocking.measured, 6.0);
  EXPECT_DOUBLE_EQ(blocking.upper, 5.0);
}

TEST(TraceAnalysis, BurstGenerationDisablesCorollary1Check) {
  const topology::Topology topo = golden_topology();
  obs::FlightRecorder recorder;
  auto proto = protocols::make_protocol("opt");
  (void)sim::run_simulation(topo, golden_config(), *proto, &recorder);
  obs::TraceAnalysisOptions options;
  options.num_sensors = topo.num_sensors();
  options.duty_period = golden_config().duty.period;
  const obs::TraceAnalysis analysis =
      obs::analyze_trace(recorder.events(), options);
  // One generation per slot is a burst on the compact (per-period) scale.
  EXPECT_FALSE(
      find_check(analysis, "corollary1.blocking_depth").applicable);
}

TEST(TraceAnalysis, ReliableLinksConformToTheorem2) {
  // Acceptance: on the reliable-link regime the theory models, the run's
  // FDL must sit inside the Theorem 2 envelope — and the unicast growth
  // and FWL-floor checks must hold too.
  const topology::Topology topo = reliable_copy(golden_topology());
  const sim::SimConfig config = golden_config();
  obs::FlightRecorder recorder;
  auto proto = protocols::make_protocol("opt");
  const sim::SimResult res =
      sim::run_simulation(topo, config, *proto, &recorder);
  ASSERT_TRUE(res.metrics.all_covered);

  obs::TraceAnalysisOptions options;
  options.num_sensors = topo.num_sensors();
  options.duty_period = config.duty.period;
  const obs::TraceAnalysis analysis =
      obs::analyze_trace(recorder.events(), options);

  const obs::ConformanceCheck& fdl =
      find_check(analysis, "theorem2.fdl_envelope");
  EXPECT_TRUE(fdl.applicable);
  EXPECT_TRUE(fdl.pass) << fdl.detail;
  EXPECT_TRUE(find_check(analysis, "lemma12.gw_growth").pass);
  EXPECT_TRUE(find_check(analysis, "lemma2.fwl_floor").pass);
  EXPECT_EQ(analysis.conformance.violations(), 0u);
  EXPECT_TRUE(analysis.conformance.conformant());
}

TEST(TraceAnalysis, BroadcastTracesVoidUnicastChecks) {
  const topology::Topology topo = golden_topology();
  obs::FlightRecorder recorder;
  auto proto = protocols::make_protocol("flash");
  (void)sim::run_simulation(topo, golden_config(), *proto, &recorder);
  obs::TraceAnalysisOptions options;
  options.num_sensors = topo.num_sensors();
  const obs::TraceAnalysis analysis =
      obs::analyze_trace(recorder.events(), options);
  EXPECT_GT(analysis.tx_broadcasts, 0u);
  EXPECT_FALSE(find_check(analysis, "lemma12.gw_growth").applicable);
  EXPECT_FALSE(find_check(analysis, "lemma2.fwl_floor").applicable);
}

// --- Exports ---------------------------------------------------------------

TEST(TraceAnalysis, DotExportRendersTheTree) {
  const std::vector<sim::TraceEvent> events = {
      generate_event(0, 0),
      tx_event(0, 1, 0, 2),
      delivery_event(1, 0, 0, 2),
      tx_event(1, 2, 0, 4),
      delivery_event(2, 0, 1, 4, /*overheard=*/true),
      covered_event(0, 4),
      run_end_event(5, true),
  };
  const obs::TraceAnalysis analysis = obs::analyze_trace(events);
  ASSERT_EQ(analysis.trees.size(), 1u);
  std::stringstream dot;
  obs::write_tree_dot(dot, analysis.trees[0]);
  const std::string text = dot.str();
  EXPECT_NE(text.find("digraph"), std::string::npos);
  EXPECT_NE(text.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(text.find("n1 -> n2"), std::string::npos);
  EXPECT_NE(text.find("doublecircle"), std::string::npos);  // the source.
  EXPECT_NE(text.find("dashed"), std::string::npos);  // the overheard edge.
}

TEST(TraceAnalysis, ReportIsSchemaTaggedBalancedJson) {
  const topology::Topology topo = golden_topology();
  const sim::SimConfig config = golden_config();
  obs::FlightRecorder recorder;
  auto proto = protocols::make_protocol("opt");
  (void)sim::run_simulation(topo, config, *proto, &recorder);
  obs::TraceAnalysisOptions options;
  options.num_sensors = topo.num_sensors();
  options.duty_period = config.duty.period;
  const obs::TraceAnalysis analysis =
      obs::analyze_trace(recorder.events(), options);

  obs::TraceAnalysisReportContext context;
  context.tool = "test";
  context.trace_path = "live";
  context.analysis = &analysis;
  std::stringstream out;
  obs::write_trace_analysis_report(out, context);
  const std::string json = out.str();
  EXPECT_TRUE(balanced_json(json));
  EXPECT_NE(json.find("\"schema\":\"ldcf.trace_analysis.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"conformance\""), std::string::npos);
  EXPECT_NE(json.find("\"packets\""), std::string::npos);
  EXPECT_NE(json.find("\"provenance\""), std::string::npos);
}

TEST(TraceAnalysis, TextRenderingNamesEveryCheck) {
  const topology::Topology topo = golden_topology();
  obs::FlightRecorder recorder;
  auto proto = protocols::make_protocol("opt");
  (void)sim::run_simulation(topo, golden_config(), *proto, &recorder);
  obs::TraceAnalysisOptions options;
  options.num_sensors = topo.num_sensors();
  options.duty_period = golden_config().duty.period;
  const obs::TraceAnalysis analysis =
      obs::analyze_trace(recorder.events(), options);
  std::stringstream out;
  obs::print_trace_analysis(out, analysis);
  const std::string text = out.str();
  for (const char* name : {"lemma12.gw_growth", "lemma2.fwl_floor",
                           "corollary1.blocking_depth",
                           "theorem2.fdl_envelope"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
}

}  // namespace
