#include "ldcf/obs/registry.hpp"

#include <gtest/gtest.h>

#include "ldcf/common/error.hpp"

namespace ldcf::obs {
namespace {

TEST(MetricsRegistry, FindOrCreateReturnsStableReferences) {
  MetricsRegistry registry;
  Counter& c = registry.counter("tx.attempts");
  c.inc();
  // Creating unrelated metrics must not invalidate the reference
  // (node-based storage is what makes the hot path allocation-free).
  for (int i = 0; i < 100; ++i) {
    (void)registry.counter("filler." + std::to_string(i));
  }
  Counter& again = registry.counter("tx.attempts");
  EXPECT_EQ(&c, &again);
  c.inc(2);
  EXPECT_EQ(again.value(), 3u);
}

TEST(MetricsRegistry, GaugesAndHistogramsRegister) {
  MetricsRegistry registry;
  registry.gauge("load").set(0.75);
  EXPECT_DOUBLE_EQ(registry.gauge("load").value(), 0.75);

  HistogramOptions options;
  options.max_bins = 8;
  Histogram& h = registry.histogram("delay", options);
  h.record(3.0);
  EXPECT_EQ(registry.histogram("delay", options).count(), 1u);

  // Re-registration with different options is a programming error.
  HistogramOptions different = options;
  different.max_bins = 16;
  EXPECT_THROW((void)registry.histogram("delay", different), InvalidArgument);
}

TEST(MetricsRegistry, MergeAddsCountersKeepsMaxGaugeMergesHistograms) {
  MetricsRegistry a;
  a.counter("shared").inc(3);
  a.counter("only_a").inc(1);
  a.gauge("peak").set(2.0);
  a.histogram("delay").record(1.0);

  MetricsRegistry b;
  b.counter("shared").inc(4);
  b.counter("only_b").inc(7);
  b.gauge("peak").set(5.0);
  b.histogram("delay").record(2.0);
  b.histogram("only_b_hist").record(9.0);

  a.merge(b);
  EXPECT_EQ(a.counter("shared").value(), 7u);
  EXPECT_EQ(a.counter("only_a").value(), 1u);
  EXPECT_EQ(a.counter("only_b").value(), 7u);  // created by the merge.
  EXPECT_DOUBLE_EQ(a.gauge("peak").value(), 5.0);
  EXPECT_EQ(a.histogram("delay").count(), 2u);
  EXPECT_EQ(a.histogram("only_b_hist").count(), 1u);

  // Merging the other way keeps the gauge maximum.
  MetricsRegistry c;
  c.gauge("peak").set(1.0);
  a.merge(c);
  EXPECT_DOUBLE_EQ(a.gauge("peak").value(), 5.0);
}

TEST(MetricsRegistry, MergeIntoEmptyCopiesEverything) {
  MetricsRegistry src;
  src.counter("n").inc(5);
  src.gauge("g").set(-1.5);
  HistogramOptions options;
  options.bin_width = 2.0;
  src.histogram("h", options).record(6.0);

  MetricsRegistry dst;
  dst.merge(src);
  EXPECT_EQ(dst.counter("n").value(), 5u);
  EXPECT_DOUBLE_EQ(dst.gauge("g").value(), -1.5);
  // The histogram was created with the source's options.
  EXPECT_DOUBLE_EQ(dst.histogram("h", options).options().bin_width, 2.0);
  EXPECT_EQ(dst.histogram("h", options).count(), 1u);
}

TEST(MetricsRegistry, IterationIsNameOrdered) {
  MetricsRegistry registry;
  registry.counter("zebra").inc();
  registry.counter("apple").inc();
  registry.counter("mango").inc();
  std::vector<std::string> names;
  for (const auto& [name, counter] : registry.counters()) {
    names.push_back(name);
  }
  EXPECT_EQ(names, (std::vector<std::string>{"apple", "mango", "zebra"}));
}

}  // namespace
}  // namespace ldcf::obs
