#include "ldcf/obs/histogram.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "ldcf/common/error.hpp"

namespace ldcf::obs {
namespace {

HistogramOptions narrow(std::size_t max_bins, bool auto_range = true) {
  HistogramOptions options;
  options.bin_width = 1.0;
  options.max_bins = max_bins;
  options.auto_range = auto_range;
  return options;
}

TEST(Histogram, EmptyHistogramIsAllZeros) {
  const Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  for (std::size_t i = 0; i < h.num_bins(); ++i) {
    EXPECT_EQ(h.bin_count(i), 0u);
  }
}

TEST(Histogram, RejectsBadOptionsAndSamples) {
  HistogramOptions bad_width;
  bad_width.bin_width = 0.0;
  EXPECT_THROW(Histogram{bad_width}, InvalidArgument);
  HistogramOptions no_bins;
  no_bins.max_bins = 0;
  EXPECT_THROW(Histogram{no_bins}, InvalidArgument);

  Histogram h;
  EXPECT_THROW(h.record(-1.0), InvalidArgument);
  EXPECT_THROW(h.record(std::numeric_limits<double>::infinity()),
               InvalidArgument);
  EXPECT_THROW(h.record(std::numeric_limits<double>::quiet_NaN()),
               InvalidArgument);
  // Zero weight is a no-op, not an error.
  h.record(3.0, 0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(Histogram, RecordsIntoUnitBins) {
  Histogram h(narrow(8));
  h.record(0.0);
  h.record(0.5);
  h.record(3.0, 4);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(3), 4u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 3.0);
  EXPECT_DOUBLE_EQ(h.sum(), 12.5);
  EXPECT_DOUBLE_EQ(h.mean(), 12.5 / 6.0);
  EXPECT_DOUBLE_EQ(h.bin_lower(3), 3.0);
  EXPECT_DOUBLE_EQ(h.bin_upper(3), 4.0);
}

// Auto-range growth: overflow doubles the width by pairwise bin merging,
// so not a single count may be lost or moved across a (coarse) bin edge.
TEST(Histogram, AutoRangeGrowthPreservesCounts) {
  Histogram h(narrow(4));
  h.record(0.0);  // bin 0
  h.record(1.0);  // bin 1
  h.record(2.0);  // bin 2
  h.record(3.0);  // bin 3
  EXPECT_DOUBLE_EQ(h.bin_width(), 1.0);

  h.record(7.0);  // overflows [0,4): width doubles to 2.
  EXPECT_DOUBLE_EQ(h.bin_width(), 2.0);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);  // old bins 0+1.
  EXPECT_EQ(h.bin_count(1), 2u);  // old bins 2+3.
  EXPECT_EQ(h.bin_count(2), 0u);
  EXPECT_EQ(h.bin_count(3), 1u);  // the new sample, [6,8).

  h.record(100.0);  // forces several more doublings: 100/width < 4.
  EXPECT_DOUBLE_EQ(h.bin_width(), 32.0);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.bin_count(0), 5u);  // everything below 32.
  EXPECT_EQ(h.bin_count(3), 1u);  // 100 in [96,128).
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < h.num_bins(); ++i) total += h.bin_count(i);
  EXPECT_EQ(total, h.count());
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
}

// With auto_range off the bins never move: overflow saturates into the
// last bin while the exact aggregates keep the true values.
TEST(Histogram, FixedRangeSaturatesIntoLastBin) {
  Histogram h(narrow(4, /*auto_range=*/false));
  h.record(2.0);
  h.record(50.0);
  h.record(1e9);
  EXPECT_DOUBLE_EQ(h.bin_width(), 1.0);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(3), 2u);  // both overflow samples clamp here.
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.max(), 1e9);  // aggregates are not clamped.
}

TEST(Histogram, SingleBinHistogramCollectsEverything) {
  Histogram h(narrow(1, /*auto_range=*/false));
  h.record(0.0);
  h.record(123.0);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.count(), 2u);
}

TEST(Histogram, MergeWithEmptyIsIdentityBothWays) {
  Histogram a(narrow(8));
  a.record(3.0, 5);
  const Histogram empty(narrow(8));

  Histogram a_copy = a;
  a_copy.merge(empty);  // no-op.
  EXPECT_EQ(a_copy.count(), 5u);
  EXPECT_EQ(a_copy.bin_count(3), 5u);
  EXPECT_DOUBLE_EQ(a_copy.bin_width(), 1.0);

  Histogram adopt(narrow(8));
  adopt.merge(a);  // empty adopts the populated side exactly.
  EXPECT_EQ(adopt.count(), 5u);
  EXPECT_EQ(adopt.bin_count(3), 5u);
  EXPECT_DOUBLE_EQ(adopt.min(), 3.0);
  EXPECT_DOUBLE_EQ(adopt.max(), 3.0);

  Histogram both(narrow(8));
  both.merge(empty);  // empty into empty stays empty.
  EXPECT_EQ(both.count(), 0u);
}

TEST(Histogram, MergeRefusesDifferentOptions) {
  Histogram a(narrow(8));
  const Histogram wider(narrow(16));
  EXPECT_THROW(a.merge(wider), InvalidArgument);
  HistogramOptions other_width = narrow(8);
  other_width.bin_width = 2.0;
  const Histogram b(other_width);
  EXPECT_THROW(a.merge(b), InvalidArgument);
  const Histogram fixed(narrow(8, /*auto_range=*/false));
  EXPECT_THROW(a.merge(fixed), InvalidArgument);
}

TEST(Histogram, MergeAlignsToTheCoarserWidth) {
  Histogram fine(narrow(4));
  fine.record(1.0);  // width stays 1.
  Histogram coarse(narrow(4));
  coarse.record(7.0);  // width 2 after one doubling.
  ASSERT_DOUBLE_EQ(coarse.bin_width(), 2.0);

  // Coarse into fine: the fine side must coarsen itself first.
  Histogram fine_copy = fine;
  fine_copy.merge(coarse);
  EXPECT_DOUBLE_EQ(fine_copy.bin_width(), 2.0);
  EXPECT_EQ(fine_copy.bin_count(0), 1u);
  EXPECT_EQ(fine_copy.bin_count(3), 1u);

  // Fine into coarse: the fine counts fold pairwise on the way in.
  coarse.merge(fine);
  EXPECT_DOUBLE_EQ(coarse.bin_width(), 2.0);
  EXPECT_EQ(coarse.bin_count(0), 1u);
  EXPECT_EQ(coarse.bin_count(3), 1u);

  // Both orders produced the same bins.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(fine_copy.bin_count(i), coarse.bin_count(i));
  }
}

// The registry contract: bin counts must not depend on the order trials
// are folded in, even when the trials coarsened to different widths.
TEST(Histogram, MergeIsOrderIndependentOnIntegerData) {
  const std::vector<std::vector<double>> trials = {
      {0, 1, 2, 3},           // width 1.
      {10, 11, 12},           // width 4 (max_bins 4).
      {100},                  // width 32.
      {5, 5, 5, 6},           // width 2.
  };
  const auto build = [&](const std::vector<double>& samples) {
    Histogram h(narrow(4));
    for (const double v : samples) h.record(v);
    return h;
  };
  const auto fold = [&](const std::vector<std::size_t>& order) {
    Histogram acc(narrow(4));
    for (const std::size_t t : order) acc.merge(build(trials[t]));
    return acc;
  };
  const Histogram forward = fold({0, 1, 2, 3});
  const Histogram backward = fold({3, 2, 1, 0});
  const Histogram shuffled = fold({2, 0, 3, 1});
  ASSERT_EQ(forward.count(), 12u);
  EXPECT_DOUBLE_EQ(forward.bin_width(), backward.bin_width());
  EXPECT_DOUBLE_EQ(forward.bin_width(), shuffled.bin_width());
  for (std::size_t i = 0; i < forward.num_bins(); ++i) {
    EXPECT_EQ(forward.bin_count(i), backward.bin_count(i)) << "bin " << i;
    EXPECT_EQ(forward.bin_count(i), shuffled.bin_count(i)) << "bin " << i;
  }
  EXPECT_EQ(forward.count(), backward.count());
  EXPECT_DOUBLE_EQ(forward.sum(), backward.sum());
  EXPECT_DOUBLE_EQ(forward.min(), shuffled.min());
  EXPECT_DOUBLE_EQ(forward.max(), shuffled.max());
}

TEST(Histogram, QuantileIsNearestRankOnUnitBins) {
  Histogram h(narrow(128));
  for (int v = 1; v <= 100; ++v) h.record(v);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 95.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);   // clamped to rank 1.
  EXPECT_DOUBLE_EQ(h.quantile(-3.0), 1.0);  // out-of-range clamps.
  EXPECT_DOUBLE_EQ(h.quantile(7.0), 100.0);
}

TEST(Histogram, InterpolatedQuantileLandsInsideTheBin) {
  // 10 samples in one [0, 10) bin: rank q*10 interpolates linearly.
  HistogramOptions options;
  options.bin_width = 10.0;
  options.max_bins = 4;
  Histogram h(options);
  for (int i = 0; i < 10; ++i) h.record(5.0);
  EXPECT_DOUBLE_EQ(h.quantile_interp(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile_interp(0.9), 9.0);
  EXPECT_DOUBLE_EQ(h.quantile_interp(0.1), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile_interp(1.0), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile_interp(0.0), 0.0);
}

TEST(Histogram, InterpolatedQuantileConvergesOnUniformSamples) {
  // Samples 0..99 on unit bins: the estimator tracks the exact quantile.
  Histogram h(narrow(128));
  for (int v = 0; v < 100; ++v) h.record(v);
  EXPECT_NEAR(h.quantile_interp(0.50), 50.0, 1.0);
  EXPECT_NEAR(h.quantile_interp(0.90), 90.0, 1.0);
  EXPECT_NEAR(h.quantile_interp(0.99), 99.0, 1.0);
  // The interpolated value sits inside the nearest-rank quantile's bin.
  for (const double q : {0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double coarse = h.quantile(q);
    const double interp = h.quantile_interp(q);
    EXPECT_GE(interp, coarse) << q;
    EXPECT_LE(interp, coarse + h.bin_width()) << q;
  }
}

TEST(Histogram, InterpolatedQuantileSkipsEmptyBins) {
  Histogram h(narrow(64));
  for (int i = 0; i < 4; ++i) h.record(2.5);   // bin [2, 3).
  for (int i = 0; i < 4; ++i) h.record(40.5);  // bin [40, 41).
  // Median rank 4 completes inside the first occupied bin.
  EXPECT_DOUBLE_EQ(h.quantile_interp(0.5), 3.0);
  // p99 rank 7.92 sits 3.92/4 into the second occupied bin.
  EXPECT_DOUBLE_EQ(h.quantile_interp(0.99), 40.0 + (7.92 - 4.0) / 4.0);
}

TEST(Histogram, InterpolatedQuantileOfEmptyHistogramIsZero) {
  Histogram h(narrow(8));
  EXPECT_DOUBLE_EQ(h.quantile_interp(0.5), 0.0);
}

TEST(Histogram, InterpolatedQuantilePinnedAndMonotoneAfterCoarsening) {
  // 0..7 into 4 unit bins auto-coarsens to width 2: {[0,2):2, [2,4):2,
  // [4,6):2, [6,8):2}. Interpolation must keep working on the coarsened
  // grid with the same rank arithmetic as on the original one.
  Histogram h(narrow(4));
  for (int v = 0; v < 8; ++v) h.record(v);
  ASSERT_DOUBLE_EQ(h.bin_width(), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile_interp(0.25), 2.0);   // rank 2: top of bin 0.
  EXPECT_DOUBLE_EQ(h.quantile_interp(0.375), 3.0);  // rank 3: mid bin 1.
  EXPECT_DOUBLE_EQ(h.quantile_interp(0.5), 4.0);    // rank 4: top of bin 1.
  EXPECT_DOUBLE_EQ(h.quantile_interp(1.0), 8.0);
  // The estimator is monotone in q — the property that makes it usable as
  // a percentile curve — on this grid and within every coarse bin.
  double prev = h.quantile_interp(0.0);
  for (int step = 1; step <= 40; ++step) {
    const double q = static_cast<double>(step) / 40.0;
    const double value = h.quantile_interp(q);
    EXPECT_GE(value, prev) << "q=" << q;
    prev = value;
  }
}

}  // namespace
}  // namespace ldcf::obs
