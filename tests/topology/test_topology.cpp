#include "ldcf/topology/topology.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <utility>

#include "ldcf/common/error.hpp"

namespace ldcf::topology {
namespace {

Topology line_of(std::size_t n, double prr = 1.0) {
  Topology topo{std::vector<Point2D>(n)};
  for (NodeId i = 0; i + 1 < n; ++i) {
    topo.add_symmetric_link(i, i + 1, prr);
  }
  return topo;
}

TEST(Topology, CountsNodesAndSensors) {
  const Topology topo(std::vector<Point2D>(5));
  EXPECT_EQ(topo.num_nodes(), 5u);
  EXPECT_EQ(topo.num_sensors(), 4u);
  EXPECT_EQ(topo.num_links(), 0u);
}

TEST(Topology, RejectsEmpty) {
  EXPECT_THROW(Topology(std::vector<Point2D>{}), InvalidArgument);
}

TEST(Topology, AddLinkValidation) {
  Topology topo(std::vector<Point2D>(3));
  topo.add_link(0, 1, 0.5);
  EXPECT_THROW(topo.add_link(0, 1, 0.5), InvalidArgument);  // duplicate.
  EXPECT_THROW(topo.add_link(0, 0, 0.5), InvalidArgument);  // self loop.
  EXPECT_THROW(topo.add_link(0, 3, 0.5), InvalidArgument);  // out of range.
  EXPECT_THROW(topo.add_link(1, 2, 0.0), InvalidArgument);  // bad prr.
  EXPECT_THROW(topo.add_link(1, 2, 1.5), InvalidArgument);
}

TEST(Topology, DirectedLinksAreIndependent) {
  Topology topo(std::vector<Point2D>(3));
  topo.add_link(0, 1, 0.9);
  topo.add_link(1, 0, 0.4);
  EXPECT_DOUBLE_EQ(topo.prr(0, 1).value(), 0.9);
  EXPECT_DOUBLE_EQ(topo.prr(1, 0).value(), 0.4);
  EXPECT_FALSE(topo.prr(0, 2).has_value());
  EXPECT_TRUE(topo.has_link(0, 1));
  EXPECT_FALSE(topo.has_link(2, 0));
}

TEST(Topology, NeighborsSortedById) {
  Topology topo(std::vector<Point2D>(5));
  topo.add_link(0, 4, 0.5);
  topo.add_link(0, 2, 0.6);
  topo.add_link(0, 3, 0.7);
  const auto nbrs = topo.neighbors(0);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0].to, 2u);
  EXPECT_EQ(nbrs[1].to, 3u);
  EXPECT_EQ(nbrs[2].to, 4u);
}

TEST(Topology, MeanDegreeAndPrr) {
  Topology topo(std::vector<Point2D>(4));
  topo.add_symmetric_link(0, 1, 0.5);
  topo.add_symmetric_link(1, 2, 1.0);
  EXPECT_DOUBLE_EQ(topo.mean_degree(), 1.0);  // 4 directed links / 4 nodes.
  EXPECT_DOUBLE_EQ(topo.mean_prr(), 0.75);
}

TEST(Topology, HopDistancesOnALine) {
  const Topology topo = line_of(5);
  const auto dist = topo.hop_distances(0);
  for (NodeId i = 0; i < 5; ++i) {
    EXPECT_EQ(dist[i], i);
  }
  EXPECT_EQ(topo.eccentricity_from_source(), 4u);
}

TEST(Topology, DisconnectedComponentDetected) {
  Topology topo(std::vector<Point2D>(4));
  topo.add_symmetric_link(0, 1, 1.0);
  topo.add_symmetric_link(2, 3, 1.0);
  EXPECT_FALSE(topo.connected_from_source());
  EXPECT_EQ(topo.reachable_count(0), 2u);
  const auto dist = topo.hop_distances(0);
  EXPECT_EQ(dist[2], kNeverSlot);
  EXPECT_EQ(dist[3], kNeverSlot);
}

TEST(Topology, ConnectedFromSource) {
  EXPECT_TRUE(line_of(10).connected_from_source());
}

TEST(Topology, PositionAccess) {
  Topology topo(std::vector<Point2D>{{0, 0}, {3, 4}});
  EXPECT_DOUBLE_EQ(topo.position(1).x, 3.0);
  EXPECT_DOUBLE_EQ(distance(topo.position(0), topo.position(1)), 5.0);
  EXPECT_THROW((void)topo.position(2), InvalidArgument);
}

TEST(Topology, HopDistanceRespectsDirectedness) {
  Topology topo(std::vector<Point2D>(3));
  topo.add_link(0, 1, 1.0);
  topo.add_link(1, 2, 1.0);
  // No reverse links: node 2 cannot reach 0.
  EXPECT_EQ(topo.hop_distances(0)[2], 2u);
  EXPECT_EQ(topo.hop_distances(2)[0], kNeverSlot);
}

TEST(Topology, SealsLazilyOnFirstQuery) {
  Topology topo(std::vector<Point2D>(3));
  topo.add_link(0, 1, 0.5);
  EXPECT_FALSE(topo.sealed());
  EXPECT_EQ(topo.neighbors(0).size(), 1u);  // first query seals.
  EXPECT_TRUE(topo.sealed());
  topo.seal();  // idempotent.
  EXPECT_TRUE(topo.sealed());
}

TEST(Topology, ThawsOnAddLinkAfterSeal) {
  // Interleaved build/query: queries between add_links must keep seeing
  // consistent state (the CSR re-seals transparently).
  Topology topo(std::vector<Point2D>(4));
  topo.add_link(0, 1, 0.5);
  EXPECT_TRUE(topo.has_link(0, 1));  // seals.
  topo.add_link(0, 2, 0.6);          // thaws.
  EXPECT_FALSE(topo.sealed());
  topo.add_link(2, 3, 0.7);
  EXPECT_TRUE(topo.has_link(0, 2));  // re-seals.
  EXPECT_TRUE(topo.has_link(2, 3));
  EXPECT_TRUE(topo.has_link(0, 1));  // earlier link survived the round trip.
  EXPECT_EQ(topo.num_links(), 3u);
  // Duplicate detection still works across a thaw.
  EXPECT_THROW(topo.add_link(0, 1, 0.5), InvalidArgument);
}

TEST(Topology, CsrRowsAreContiguousAndSorted) {
  Topology topo = line_of(6, 0.8);
  topo.seal();
  // Adjacent nodes' spans tile one flat array: row n ends where row n+1
  // starts (links of a line: 1, 2, 2, 2, 2, 1).
  const auto first = topo.neighbors(0);
  EXPECT_EQ(first.size(), 1u);
  const Link* expected_next = first.data() + first.size();
  for (NodeId n = 1; n < topo.num_nodes(); ++n) {
    const auto row = topo.neighbors(n);
    EXPECT_EQ(row.data(), expected_next);
    EXPECT_TRUE(std::is_sorted(
        row.begin(), row.end(),
        [](const Link& a, const Link& b) { return a.to < b.to; }));
    expected_next = row.data() + row.size();
  }
}

TEST(Topology, CopyAndMovePreserveGraphAndSealState) {
  Topology topo = line_of(5, 0.9);
  topo.seal();
  const Topology copy(topo);
  EXPECT_TRUE(copy.sealed());
  EXPECT_EQ(copy.num_links(), topo.num_links());
  EXPECT_EQ(copy.prr(1, 2).value(), 0.9);

  Topology unsealed = line_of(5, 0.4);
  const Topology copied_unsealed(unsealed);
  EXPECT_FALSE(copied_unsealed.sealed());
  EXPECT_EQ(copied_unsealed.prr(3, 4).value(), 0.4);

  Topology moved(std::move(topo));
  EXPECT_TRUE(moved.sealed());
  EXPECT_EQ(moved.num_links(), 8u);
  EXPECT_EQ(moved.prr(0, 1).value(), 0.9);

  Topology assigned;
  assigned = std::move(moved);
  EXPECT_EQ(assigned.num_links(), 8u);
  EXPECT_TRUE(assigned.has_link(4, 3));
}

TEST(Topology, ConcurrentFirstQueriesSealOnce) {
  // The lazy seal is double-checked behind a mutex; hammer the first-query
  // window from several threads (this is the case the TSan job watches).
  Topology topo = line_of(200, 0.7);
  ASSERT_FALSE(topo.sealed());
  std::vector<std::thread> workers;
  std::atomic<std::size_t> total{0};
  workers.reserve(4);
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&topo, &total] {
      std::size_t links = 0;
      for (NodeId n = 0; n < topo.num_nodes(); ++n) {
        links += topo.neighbors(n).size();
      }
      total += links;
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_TRUE(topo.sealed());
  EXPECT_EQ(total.load(), 4u * topo.num_links());
}

TEST(Topology, PositionsSpanMatchesAccessor) {
  Topology topo(std::vector<Point2D>{{0, 0}, {3, 4}, {6, 8}});
  const auto span = topo.positions();
  ASSERT_EQ(span.size(), 3u);
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    EXPECT_EQ(span[n], topo.position(n));
  }
}

}  // namespace
}  // namespace ldcf::topology
