#include "ldcf/topology/topology.hpp"

#include <gtest/gtest.h>

#include "ldcf/common/error.hpp"

namespace ldcf::topology {
namespace {

Topology line_of(std::size_t n, double prr = 1.0) {
  Topology topo{std::vector<Point2D>(n)};
  for (NodeId i = 0; i + 1 < n; ++i) {
    topo.add_symmetric_link(i, i + 1, prr);
  }
  return topo;
}

TEST(Topology, CountsNodesAndSensors) {
  const Topology topo(std::vector<Point2D>(5));
  EXPECT_EQ(topo.num_nodes(), 5u);
  EXPECT_EQ(topo.num_sensors(), 4u);
  EXPECT_EQ(topo.num_links(), 0u);
}

TEST(Topology, RejectsEmpty) {
  EXPECT_THROW(Topology(std::vector<Point2D>{}), InvalidArgument);
}

TEST(Topology, AddLinkValidation) {
  Topology topo(std::vector<Point2D>(3));
  topo.add_link(0, 1, 0.5);
  EXPECT_THROW(topo.add_link(0, 1, 0.5), InvalidArgument);  // duplicate.
  EXPECT_THROW(topo.add_link(0, 0, 0.5), InvalidArgument);  // self loop.
  EXPECT_THROW(topo.add_link(0, 3, 0.5), InvalidArgument);  // out of range.
  EXPECT_THROW(topo.add_link(1, 2, 0.0), InvalidArgument);  // bad prr.
  EXPECT_THROW(topo.add_link(1, 2, 1.5), InvalidArgument);
}

TEST(Topology, DirectedLinksAreIndependent) {
  Topology topo(std::vector<Point2D>(3));
  topo.add_link(0, 1, 0.9);
  topo.add_link(1, 0, 0.4);
  EXPECT_DOUBLE_EQ(topo.prr(0, 1).value(), 0.9);
  EXPECT_DOUBLE_EQ(topo.prr(1, 0).value(), 0.4);
  EXPECT_FALSE(topo.prr(0, 2).has_value());
  EXPECT_TRUE(topo.has_link(0, 1));
  EXPECT_FALSE(topo.has_link(2, 0));
}

TEST(Topology, NeighborsSortedById) {
  Topology topo(std::vector<Point2D>(5));
  topo.add_link(0, 4, 0.5);
  topo.add_link(0, 2, 0.6);
  topo.add_link(0, 3, 0.7);
  const auto nbrs = topo.neighbors(0);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0].to, 2u);
  EXPECT_EQ(nbrs[1].to, 3u);
  EXPECT_EQ(nbrs[2].to, 4u);
}

TEST(Topology, MeanDegreeAndPrr) {
  Topology topo(std::vector<Point2D>(4));
  topo.add_symmetric_link(0, 1, 0.5);
  topo.add_symmetric_link(1, 2, 1.0);
  EXPECT_DOUBLE_EQ(topo.mean_degree(), 1.0);  // 4 directed links / 4 nodes.
  EXPECT_DOUBLE_EQ(topo.mean_prr(), 0.75);
}

TEST(Topology, HopDistancesOnALine) {
  const Topology topo = line_of(5);
  const auto dist = topo.hop_distances(0);
  for (NodeId i = 0; i < 5; ++i) {
    EXPECT_EQ(dist[i], i);
  }
  EXPECT_EQ(topo.eccentricity_from_source(), 4u);
}

TEST(Topology, DisconnectedComponentDetected) {
  Topology topo(std::vector<Point2D>(4));
  topo.add_symmetric_link(0, 1, 1.0);
  topo.add_symmetric_link(2, 3, 1.0);
  EXPECT_FALSE(topo.connected_from_source());
  EXPECT_EQ(topo.reachable_count(0), 2u);
  const auto dist = topo.hop_distances(0);
  EXPECT_EQ(dist[2], kNeverSlot);
  EXPECT_EQ(dist[3], kNeverSlot);
}

TEST(Topology, ConnectedFromSource) {
  EXPECT_TRUE(line_of(10).connected_from_source());
}

TEST(Topology, PositionAccess) {
  Topology topo(std::vector<Point2D>{{0, 0}, {3, 4}});
  EXPECT_DOUBLE_EQ(topo.position(1).x, 3.0);
  EXPECT_DOUBLE_EQ(distance(topo.position(0), topo.position(1)), 5.0);
  EXPECT_THROW((void)topo.position(2), InvalidArgument);
}

TEST(Topology, HopDistanceRespectsDirectedness) {
  Topology topo(std::vector<Point2D>(3));
  topo.add_link(0, 1, 1.0);
  topo.add_link(1, 2, 1.0);
  // No reverse links: node 2 cannot reach 0.
  EXPECT_EQ(topo.hop_distances(0)[2], 2u);
  EXPECT_EQ(topo.hop_distances(2)[0], kNeverSlot);
}

}  // namespace
}  // namespace ldcf::topology
