#include "ldcf/topology/spatial_hash.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <vector>

#include "ldcf/common/error.hpp"
#include "ldcf/common/rng.hpp"
#include "ldcf/topology/geometry.hpp"

namespace ldcf::topology {
namespace {

std::vector<Point2D> random_points(std::size_t count, double side,
                                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Point2D> pts(count);
  for (auto& p : pts) {
    p = Point2D{rng.uniform() * side, rng.uniform() * side};
  }
  return pts;
}

/// Reference enumeration: all pairs within `radius`, partners above `a`.
std::vector<NodeId> brute_partners_above(const std::vector<Point2D>& pts,
                                         NodeId a, double radius) {
  std::vector<NodeId> out;
  for (NodeId b = a + 1; b < pts.size(); ++b) {
    if (distance(pts[a], pts[b]) <= radius) out.push_back(b);
  }
  return out;
}

TEST(SpatialHash, RejectsBadInputs) {
  const std::vector<Point2D> pts = {{0.0, 0.0}};
  EXPECT_THROW(SpatialHashGrid(std::span<const Point2D>{}, 10.0),
               InvalidArgument);
  EXPECT_THROW(SpatialHashGrid(pts, 0.0), InvalidArgument);
  EXPECT_THROW(SpatialHashGrid(pts, -1.0), InvalidArgument);
}

TEST(SpatialHash, EveryNodeLandsInExactlyOneCell) {
  const auto pts = random_points(500, 300.0, 11);
  const SpatialHashGrid grid(pts, 40.0);
  std::vector<std::size_t> seen(pts.size(), 0);
  for (std::size_t c = 0; c < grid.num_cells(); ++c) {
    for (const NodeId n : grid.cell_nodes(c)) {
      ASSERT_LT(n, pts.size());
      ++seen[n];
      EXPECT_EQ(grid.cell_of(pts[n]), c);
    }
  }
  for (const std::size_t count : seen) EXPECT_EQ(count, 1u);
}

TEST(SpatialHash, BucketsAreAscending) {
  const auto pts = random_points(400, 250.0, 3);
  const SpatialHashGrid grid(pts, 30.0);
  for (std::size_t c = 0; c < grid.num_cells(); ++c) {
    const auto nodes = grid.cell_nodes(c);
    EXPECT_TRUE(std::is_sorted(nodes.begin(), nodes.end()));
  }
}

TEST(SpatialHash, CandidatesAreSupersetOfInRangePartners) {
  const double radius = 35.0;
  const auto pts = random_points(600, 400.0, 7);
  const SpatialHashGrid grid(pts, radius);
  std::vector<NodeId> candidates;
  for (NodeId a = 0; a < pts.size(); ++a) {
    grid.candidates_above(a, candidates);
    EXPECT_TRUE(std::is_sorted(candidates.begin(), candidates.end()));
    for (const NodeId b : candidates) EXPECT_GT(b, a);
    for (const NodeId b : brute_partners_above(pts, a, radius)) {
      EXPECT_TRUE(std::binary_search(candidates.begin(), candidates.end(), b))
          << "in-range pair (" << a << ", " << b << ") missed by the grid";
    }
  }
}

TEST(SpatialHash, SupersetSurvivesTheCellCountCap) {
  // A huge sparse area forces the per-axis O(sqrt(N)) cell cap to engage
  // (cells get wider than requested); the superset guarantee must hold.
  const double radius = 5.0;
  const auto pts = random_points(64, 10'000.0, 19);
  const SpatialHashGrid grid(pts, radius);
  EXPECT_LE(grid.cols(), 2u * 8u + 1u);
  EXPECT_LE(grid.rows(), 2u * 8u + 1u);
  std::vector<NodeId> candidates;
  for (NodeId a = 0; a < pts.size(); ++a) {
    grid.candidates_above(a, candidates);
    for (const NodeId b : brute_partners_above(pts, a, radius)) {
      EXPECT_TRUE(std::binary_search(candidates.begin(), candidates.end(), b));
    }
  }
}

TEST(SpatialHash, HandlesDegenerateGeometry) {
  // All points coincident: one cell, everyone is everyone's candidate.
  const std::vector<Point2D> same(10, Point2D{5.0, 5.0});
  const SpatialHashGrid grid(same, 1.0);
  EXPECT_EQ(grid.num_cells(), 1u);
  std::vector<NodeId> candidates;
  grid.candidates_above(0, candidates);
  EXPECT_EQ(candidates.size(), 9u);

  // Collinear points: a 1-row grid still covers neighbors.
  std::vector<Point2D> line;
  for (int i = 0; i < 20; ++i) {
    line.push_back(Point2D{static_cast<double>(i) * 10.0, 0.0});
  }
  const SpatialHashGrid line_grid(line, 15.0);
  for (NodeId a = 0; a < line.size(); ++a) {
    line_grid.candidates_above(a, candidates);
    for (const NodeId b : brute_partners_above(line, a, 15.0)) {
      EXPECT_TRUE(
          std::binary_search(candidates.begin(), candidates.end(), b));
    }
  }
}

TEST(SpatialHash, CandidateUnionCoversEveryPairExactlyOnce) {
  // Summing candidates_above over all nodes enumerates each unordered pair
  // at most once (b > a filter) and covers all close pairs.
  const auto pts = random_points(200, 120.0, 23);
  const SpatialHashGrid grid(pts, 25.0);
  std::vector<NodeId> candidates;
  std::size_t listed = 0;
  for (NodeId a = 0; a < pts.size(); ++a) {
    grid.candidates_above(a, candidates);
    listed += candidates.size();
    EXPECT_TRUE(std::adjacent_find(candidates.begin(), candidates.end()) ==
                candidates.end());
  }
  EXPECT_LE(listed, pts.size() * (pts.size() - 1) / 2);
}

}  // namespace
}  // namespace ldcf::topology
