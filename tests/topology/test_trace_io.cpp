#include "ldcf/topology/trace_io.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "ldcf/common/error.hpp"
#include "ldcf/topology/generators.hpp"

namespace ldcf::topology {
namespace {

void expect_same(const Topology& a, const Topology& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_links(), b.num_links());
  for (NodeId n = 0; n < a.num_nodes(); ++n) {
    EXPECT_NEAR(a.position(n).x, b.position(n).x, 1e-4);
    EXPECT_NEAR(a.position(n).y, b.position(n).y, 1e-4);
    const auto na = a.neighbors(n);
    const auto nb = b.neighbors(n);
    ASSERT_EQ(na.size(), nb.size());
    for (std::size_t i = 0; i < na.size(); ++i) {
      EXPECT_EQ(na[i].to, nb[i].to);
      EXPECT_NEAR(na[i].prr, nb[i].prr, 1e-4);
    }
  }
}

TEST(TraceIo, RoundTripsSmallTopology) {
  Topology topo(std::vector<Point2D>{{0, 0}, {10, 0}, {10, 10}});
  topo.add_symmetric_link(0, 1, 0.8);
  topo.add_link(1, 2, 0.33);
  std::stringstream stream;
  write_trace(topo, stream);
  const Topology loaded = read_trace(stream);
  expect_same(topo, loaded);
}

TEST(TraceIo, RoundTripsGreenOrbsLike) {
  const Topology topo = make_greenorbs_like(4);
  std::stringstream stream;
  write_trace(topo, stream);
  const Topology loaded = read_trace(stream);
  expect_same(topo, loaded);
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/ldcf_trace_test.csv";
  const Topology topo = make_greenorbs_like(6);
  write_trace_file(topo, path);
  const Topology loaded = read_trace_file(path);
  expect_same(topo, loaded);
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsMissingHeader) {
  std::stringstream stream("node,0,0,0\n");
  EXPECT_THROW((void)read_trace(stream), InvalidArgument);
}

TEST(TraceIo, RejectsUnknownRecord) {
  std::stringstream stream("# ldcf-trace v1\nfrobnicate,1,2,3\n");
  EXPECT_THROW((void)read_trace(stream), InvalidArgument);
}

TEST(TraceIo, RejectsNonDenseNodeIds) {
  std::stringstream stream("# ldcf-trace v1\nnode,0,0,0\nnode,2,1,1\n");
  EXPECT_THROW((void)read_trace(stream), InvalidArgument);
}

TEST(TraceIo, RejectsNodeAfterLink) {
  std::stringstream stream(
      "# ldcf-trace v1\nnode,0,0,0\nnode,1,1,1\nlink,0,1,0.5\nnode,2,2,2\n");
  EXPECT_THROW((void)read_trace(stream), InvalidArgument);
}

TEST(TraceIo, RejectsInvalidLink) {
  std::stringstream stream(
      "# ldcf-trace v1\nnode,0,0,0\nnode,1,1,1\nlink,0,1,1.5\n");
  EXPECT_THROW((void)read_trace(stream), InvalidArgument);
}

TEST(TraceIo, RejectsEmptyTrace) {
  std::stringstream stream("# ldcf-trace v1\n");
  EXPECT_THROW((void)read_trace(stream), InvalidArgument);
}

TEST(TraceIo, SkipsCommentsAndBlankLines) {
  std::stringstream stream(
      "# ldcf-trace v1\n# a comment\n\nnode,0,0,0\nnode,1,3,4\n\n"
      "# more\nlink,0,1,0.5\n");
  const Topology topo = read_trace(stream);
  EXPECT_EQ(topo.num_nodes(), 2u);
  EXPECT_DOUBLE_EQ(topo.prr(0, 1).value(), 0.5);
}

TEST(TraceIo, DotExportContainsNodesAndEdges) {
  Topology topo(std::vector<Point2D>{{0, 0}, {10, 20}, {30, 40}});
  topo.add_symmetric_link(0, 1, 0.9);
  topo.add_link(1, 2, 0.3);
  std::stringstream stream;
  write_dot(topo, stream);
  const std::string dot = stream.str();
  EXPECT_NE(dot.find("graph ldcf_trace"), std::string::npos);
  EXPECT_NE(dot.find("1 [pos=\"10,20!\"]"), std::string::npos);
  // Each unordered pair appears exactly once.
  EXPECT_NE(dot.find("0 -- 1"), std::string::npos);
  EXPECT_EQ(dot.find("1 -- 0"), std::string::npos);
  EXPECT_NE(dot.find("1 -- 2"), std::string::npos);
  // Better links get darker (smaller gray index).
  const auto strong = dot.find("0 -- 1 [color=gray");
  const auto weak = dot.find("1 -- 2 [color=gray");
  ASSERT_NE(strong, std::string::npos);
  ASSERT_NE(weak, std::string::npos);
  const int strong_gray = std::stoi(dot.substr(strong + 18, 2));
  const int weak_gray = std::stoi(dot.substr(weak + 18, 2));
  EXPECT_LT(strong_gray, weak_gray);
}

TEST(TraceIo, DotFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/ldcf_dot_test.dot";
  write_dot_file(make_greenorbs_like(2), path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first, "graph ldcf_trace {");
  std::remove(path.c_str());
  EXPECT_THROW(write_dot_file(make_greenorbs_like(2), "/nonexistent/x.dot"),
               InvalidArgument);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW((void)read_trace_file("/nonexistent/path/trace.csv"),
               InvalidArgument);
  const Topology topo(std::vector<Point2D>(1));
  EXPECT_THROW(write_trace_file(topo, "/nonexistent/path/trace.csv"),
               InvalidArgument);
}

}  // namespace
}  // namespace ldcf::topology
