#include "ldcf/topology/tree.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "ldcf/common/error.hpp"
#include "ldcf/common/rng.hpp"
#include "ldcf/topology/generators.hpp"

namespace ldcf::topology {
namespace {

/// Diamond: 0 -> {1, 2} -> 3, with one cheap and one lossy branch.
Topology diamond() {
  Topology topo(std::vector<Point2D>(4));
  topo.add_symmetric_link(0, 1, 1.0);   // ETX 1
  topo.add_symmetric_link(0, 2, 0.25);  // ETX 4
  topo.add_symmetric_link(1, 3, 0.5);   // ETX 2
  topo.add_symmetric_link(2, 3, 1.0);   // ETX 1
  return topo;
}

TEST(EtxTree, PicksMinimumExpectedTransmissions) {
  const Topology topo = diamond();
  const Tree tree = build_etx_tree(topo, 0);
  // Route to 3: via 1 costs 1+2 = 3; via 2 costs 4+1 = 5.
  EXPECT_EQ(tree.parent[3], 1u);
  EXPECT_DOUBLE_EQ(tree.cost[3], 3.0);
  EXPECT_EQ(tree.parent[1], 0u);
  EXPECT_EQ(tree.parent[2], 0u);
  EXPECT_EQ(tree.parent[0], kNoNode);
  EXPECT_TRUE(tree.reached(3));
}

TEST(EtxTree, UnreachableNodesStayUnparented) {
  Topology topo(std::vector<Point2D>(3));
  topo.add_symmetric_link(0, 1, 0.5);
  const Tree tree = build_etx_tree(topo, 0);
  EXPECT_FALSE(tree.reached(2));
  EXPECT_TRUE(std::isinf(tree.cost[2]));
}

TEST(EtxTree, RejectsBadRoot) {
  const Topology topo = diamond();
  EXPECT_THROW((void)build_etx_tree(topo, 9), InvalidArgument);
}

TEST(DelayTree, SameShapeAsEtxForUniformPeriod) {
  // T/q is a scalar multiple of 1/q, so the trees agree.
  const Topology topo = make_greenorbs_like(2);
  const Tree etx = build_etx_tree(topo, 0);
  const Tree delay = build_delay_tree(topo, 0, DutyCycle{20});
  for (NodeId v = 0; v < topo.num_nodes(); ++v) {
    EXPECT_EQ(etx.parent[v], delay.parent[v]);
    if (etx.reached(v)) {
      EXPECT_NEAR(delay.cost[v], 20.0 * etx.cost[v], 1e-6);
    }
  }
}

TEST(TreeStructure, ChildrenInvertParents) {
  const Tree tree = build_etx_tree(diamond(), 0);
  const auto kids = tree.children();
  ASSERT_EQ(kids.size(), 4u);
  EXPECT_EQ(kids[0].size(), 2u);
  EXPECT_EQ(kids[1].size(), 1u);
  EXPECT_EQ(kids[1][0], 3u);
  EXPECT_TRUE(kids[3].empty());
}

TEST(TreeStructure, DepthsFollowParentChain) {
  const Tree tree = build_etx_tree(diamond(), 0);
  const auto depth = tree.depths();
  EXPECT_EQ(depth[0], 0u);
  EXPECT_EQ(depth[1], 1u);
  EXPECT_EQ(depth[2], 1u);
  EXPECT_EQ(depth[3], 2u);
}

TEST(TreeStructure, GreenOrbsTreeSpansReachableNodes) {
  const Topology topo = make_greenorbs_like(1);
  const Tree tree = build_etx_tree(topo, 0);
  std::size_t reached = 0;
  for (NodeId v = 0; v < topo.num_nodes(); ++v) {
    if (tree.reached(v)) ++reached;
  }
  EXPECT_EQ(reached, topo.reachable_count(0));
  // Tree edges must be actual links, and parents must be cheaper.
  for (NodeId v = 0; v < topo.num_nodes(); ++v) {
    if (tree.parent[v] == kNoNode) continue;
    EXPECT_TRUE(topo.has_link(tree.parent[v], v));
    EXPECT_LT(tree.cost[tree.parent[v]], tree.cost[v]);
  }
}

TEST(DelayDistributionTest, PerHopMomentsAreGeometric) {
  const Topology topo = diamond();
  const Tree tree = build_etx_tree(topo, 0);
  const DutyCycle duty{10};
  const auto dist = tree_delay_distribution(topo, tree, duty);
  // Node 1 via a perfect link: mean = T, variance = 0.
  EXPECT_DOUBLE_EQ(dist.mean[1], 10.0);
  EXPECT_DOUBLE_EQ(dist.variance[1], 0.0);
  // Node 3 via 0->1 (q=1) then 1->3 (q=0.5):
  // mean = T + T/0.5 = 30, variance = 0 + T^2 * 0.5 / 0.25 = 200.
  EXPECT_DOUBLE_EQ(dist.mean[3], 30.0);
  EXPECT_DOUBLE_EQ(dist.variance[3], 200.0);
}

TEST(DelayDistributionTest, QuantileAddsScaledStddev) {
  const Topology topo = diamond();
  const Tree tree = build_etx_tree(topo, 0);
  const auto dist = tree_delay_distribution(topo, tree, DutyCycle{10});
  EXPECT_DOUBLE_EQ(dist.quantile(3, 0.0), dist.mean[3]);
  EXPECT_NEAR(dist.quantile(3, 2.0), 30.0 + 2.0 * std::sqrt(200.0), 1e-9);
  EXPECT_LT(dist.quantile(3, -1.0), dist.mean[3]);
}

TEST(DelayDistributionTest, UnreachableNodesAreInfinite) {
  Topology topo(std::vector<Point2D>(3));
  topo.add_symmetric_link(0, 1, 0.5);
  const Tree tree = build_etx_tree(topo, 0);
  const auto dist = tree_delay_distribution(topo, tree, DutyCycle{5});
  EXPECT_TRUE(std::isinf(dist.mean[2]));
  EXPECT_TRUE(std::isinf(dist.quantile(2, 1.0)));
}

TEST(DelayDistributionTest, MonteCarloMatchesGeometricModel) {
  // Per-hop delay model: Geometric(q) attempts, one period T each. Sample
  // the two-hop diamond path 0 -> 1 -> 3 (q = 1.0 then 0.5) and check the
  // predicted mean T + T/0.5 = 30 and variance 200 (T = 10).
  const Topology topo = diamond();
  const Tree tree = build_etx_tree(topo, 0);
  const DutyCycle duty{10};
  const auto dist = tree_delay_distribution(topo, tree, duty);
  ldcf::Rng rng(99);
  constexpr int kRuns = 20000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kRuns; ++i) {
    double delay = 0.0;
    for (const double q : {1.0, 0.5}) {
      std::uint64_t attempts = 1;
      while (!rng.bernoulli(q)) ++attempts;
      delay += static_cast<double>(attempts) * duty.period;
    }
    sum += delay;
    sum_sq += delay * delay;
  }
  const double mean = sum / kRuns;
  const double var = sum_sq / kRuns - mean * mean;
  EXPECT_NEAR(mean, dist.mean[3], 0.02 * dist.mean[3]);
  EXPECT_NEAR(var, dist.variance[3], 0.10 * dist.variance[3]);
}

TEST(DelayDistributionTest, MeansIncreaseAlongTreePaths) {
  const Topology topo = make_greenorbs_like(5);
  const Tree tree = build_etx_tree(topo, 0);
  const auto dist = tree_delay_distribution(topo, tree, DutyCycle{20});
  for (NodeId v = 0; v < topo.num_nodes(); ++v) {
    if (tree.parent[v] == kNoNode) continue;
    EXPECT_GT(dist.mean[v], dist.mean[tree.parent[v]]);
    EXPECT_GE(dist.variance[v], dist.variance[tree.parent[v]]);
  }
}

}  // namespace
}  // namespace ldcf::topology
