#include "ldcf/topology/generators.hpp"

#include <gtest/gtest.h>

#include "ldcf/common/error.hpp"

namespace ldcf::topology {
namespace {

TEST(Generators, GreenOrbsLikeMatchesPaperScale) {
  const Topology topo = make_greenorbs_like(1);
  EXPECT_EQ(topo.num_sensors(), 298u);  // the paper's trace size.
  EXPECT_EQ(topo.num_nodes(), 299u);
  // Multi-hop, not single-hop: the paper's deployment is a wide forest.
  EXPECT_GE(topo.eccentricity_from_source(), 3u);
  // Source reaches essentially everyone (99% rule).
  EXPECT_GE(topo.reachable_count(0), 296u);
}

TEST(Generators, GreenOrbsLikeIsDeterministicPerSeed) {
  const Topology a = make_greenorbs_like(7);
  const Topology b = make_greenorbs_like(7);
  ASSERT_EQ(a.num_links(), b.num_links());
  for (NodeId n = 0; n < a.num_nodes(); ++n) {
    EXPECT_EQ(a.position(n), b.position(n));
    const auto na = a.neighbors(n);
    const auto nb = b.neighbors(n);
    ASSERT_EQ(na.size(), nb.size());
    for (std::size_t i = 0; i < na.size(); ++i) {
      EXPECT_EQ(na[i].to, nb[i].to);
      EXPECT_DOUBLE_EQ(na[i].prr, nb[i].prr);
    }
  }
}

TEST(Generators, DifferentSeedsProduceDifferentTopologies) {
  const Topology a = make_greenorbs_like(1);
  const Topology b = make_greenorbs_like(2);
  bool any_diff = a.num_links() != b.num_links();
  for (NodeId n = 0; !any_diff && n < a.num_nodes(); ++n) {
    any_diff = !(a.position(n) == b.position(n));
  }
  EXPECT_TRUE(any_diff);
}

TEST(Generators, GreenOrbsLikeHasHeterogeneousLinkQuality) {
  // The paper's analysis needs a broad PRR mix: some near-perfect links,
  // some lossy ones.
  const Topology topo = make_greenorbs_like(3);
  std::size_t good = 0;
  std::size_t poor = 0;
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    for (const Link& l : topo.neighbors(n)) {
      ASSERT_GT(l.prr, 0.0);
      ASSERT_LE(l.prr, 1.0);
      if (l.prr > 0.9) ++good;
      if (l.prr < 0.5) ++poor;
    }
  }
  EXPECT_GT(good, 50u);
  EXPECT_GT(poor, 50u);
}

TEST(Generators, UniformHasRequestedSize) {
  GeneratorConfig config;
  config.num_sensors = 60;
  config.area_side_m = 150.0;
  config.seed = 5;
  const Topology topo = make_uniform(config);
  EXPECT_EQ(topo.num_sensors(), 60u);
  EXPECT_GT(topo.mean_degree(), 1.0);
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    EXPECT_GE(topo.position(n).x, 0.0);
    EXPECT_LE(topo.position(n).x, config.area_side_m);
    EXPECT_GE(topo.position(n).y, 0.0);
    EXPECT_LE(topo.position(n).y, config.area_side_m);
  }
}

TEST(Generators, GridIsRegular) {
  GeneratorConfig config;
  config.num_sensors = 24;  // 25 nodes -> 5x5 grid.
  config.area_side_m = 200.0;
  const Topology topo = make_grid(config);
  EXPECT_EQ(topo.num_nodes(), 25u);
  // First row positions are evenly spaced.
  const double dx = topo.position(1).x - topo.position(0).x;
  EXPECT_NEAR(dx, 40.0, 1e-9);
  EXPECT_DOUBLE_EQ(topo.position(0).y, topo.position(4).y);
}

TEST(Generators, ConnectivityRequirementEnforced) {
  GeneratorConfig config;
  config.num_sensors = 40;
  config.area_side_m = 100000.0;  // hopeless: nodes far beyond radio range.
  config.require_connectivity = true;
  EXPECT_THROW((void)make_uniform(config), InvalidArgument);
  config.require_connectivity = false;
  const Topology topo = make_uniform(config);  // allowed to be disconnected.
  EXPECT_EQ(topo.num_sensors(), 40u);
}

TEST(Generators, CompleteTopologyIsComplete) {
  const Topology topo = make_complete(10, 0.7);
  EXPECT_EQ(topo.num_nodes(), 11u);
  EXPECT_EQ(topo.num_links(), 11u * 10u);
  for (NodeId a = 0; a < topo.num_nodes(); ++a) {
    for (NodeId b = 0; b < topo.num_nodes(); ++b) {
      if (a == b) continue;
      ASSERT_TRUE(topo.has_link(a, b));
      EXPECT_DOUBLE_EQ(topo.prr(a, b).value(), 0.7);
    }
  }
  EXPECT_THROW((void)make_complete(0, 0.7), InvalidArgument);
  EXPECT_THROW((void)make_complete(5, 0.0), InvalidArgument);
}

TEST(Generators, ClusteredPlacementStaysInArea) {
  ClusterConfig config;
  config.base.num_sensors = 80;
  config.base.seed = 9;
  const Topology topo = make_clustered(config);
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    EXPECT_GE(topo.position(n).x, 0.0);
    EXPECT_LE(topo.position(n).x, config.base.area_side_m);
  }
}

class GeneratorSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorSeedSweep, GreenOrbsLikeAlwaysViable) {
  const Topology topo = make_greenorbs_like(GetParam());
  EXPECT_EQ(topo.num_sensors(), 298u);
  EXPECT_GE(static_cast<double>(topo.reachable_count(0)),
            0.99 * static_cast<double>(topo.num_nodes()));
  EXPECT_GT(topo.mean_degree(), 4.0);   // dense enough to flood.
  EXPECT_LT(topo.mean_degree(), 120.0); // but clearly multi-hop.
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 42));

}  // namespace
}  // namespace ldcf::topology
