#include "ldcf/topology/generators.hpp"

#include <gtest/gtest.h>

#include "ldcf/common/error.hpp"

namespace ldcf::topology {
namespace {

TEST(Generators, GreenOrbsLikeMatchesPaperScale) {
  const Topology topo = make_greenorbs_like(1);
  EXPECT_EQ(topo.num_sensors(), 298u);  // the paper's trace size.
  EXPECT_EQ(topo.num_nodes(), 299u);
  // Multi-hop, not single-hop: the paper's deployment is a wide forest.
  EXPECT_GE(topo.eccentricity_from_source(), 3u);
  // Source reaches essentially everyone (99% rule).
  EXPECT_GE(topo.reachable_count(0), 296u);
}

TEST(Generators, GreenOrbsLikeIsDeterministicPerSeed) {
  const Topology a = make_greenorbs_like(7);
  const Topology b = make_greenorbs_like(7);
  ASSERT_EQ(a.num_links(), b.num_links());
  for (NodeId n = 0; n < a.num_nodes(); ++n) {
    EXPECT_EQ(a.position(n), b.position(n));
    const auto na = a.neighbors(n);
    const auto nb = b.neighbors(n);
    ASSERT_EQ(na.size(), nb.size());
    for (std::size_t i = 0; i < na.size(); ++i) {
      EXPECT_EQ(na[i].to, nb[i].to);
      EXPECT_DOUBLE_EQ(na[i].prr, nb[i].prr);
    }
  }
}

TEST(Generators, DifferentSeedsProduceDifferentTopologies) {
  const Topology a = make_greenorbs_like(1);
  const Topology b = make_greenorbs_like(2);
  bool any_diff = a.num_links() != b.num_links();
  for (NodeId n = 0; !any_diff && n < a.num_nodes(); ++n) {
    any_diff = !(a.position(n) == b.position(n));
  }
  EXPECT_TRUE(any_diff);
}

TEST(Generators, GreenOrbsLikeHasHeterogeneousLinkQuality) {
  // The paper's analysis needs a broad PRR mix: some near-perfect links,
  // some lossy ones.
  const Topology topo = make_greenorbs_like(3);
  std::size_t good = 0;
  std::size_t poor = 0;
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    for (const Link& l : topo.neighbors(n)) {
      ASSERT_GT(l.prr, 0.0);
      ASSERT_LE(l.prr, 1.0);
      if (l.prr > 0.9) ++good;
      if (l.prr < 0.5) ++poor;
    }
  }
  EXPECT_GT(good, 50u);
  EXPECT_GT(poor, 50u);
}

TEST(Generators, UniformHasRequestedSize) {
  GeneratorConfig config;
  config.num_sensors = 60;
  config.area_side_m = 150.0;
  config.seed = 5;
  const Topology topo = make_uniform(config);
  EXPECT_EQ(topo.num_sensors(), 60u);
  EXPECT_GT(topo.mean_degree(), 1.0);
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    EXPECT_GE(topo.position(n).x, 0.0);
    EXPECT_LE(topo.position(n).x, config.area_side_m);
    EXPECT_GE(topo.position(n).y, 0.0);
    EXPECT_LE(topo.position(n).y, config.area_side_m);
  }
}

TEST(Generators, GridIsRegular) {
  GeneratorConfig config;
  config.num_sensors = 24;  // 25 nodes -> 5x5 grid.
  config.area_side_m = 200.0;
  const Topology topo = make_grid(config);
  EXPECT_EQ(topo.num_nodes(), 25u);
  // First row positions are evenly spaced.
  const double dx = topo.position(1).x - topo.position(0).x;
  EXPECT_NEAR(dx, 40.0, 1e-9);
  EXPECT_DOUBLE_EQ(topo.position(0).y, topo.position(4).y);
}

TEST(Generators, ConnectivityRequirementEnforced) {
  GeneratorConfig config;
  config.num_sensors = 40;
  config.area_side_m = 100000.0;  // hopeless: nodes far beyond radio range.
  config.require_connectivity = true;
  EXPECT_THROW((void)make_uniform(config), InvalidArgument);
  config.require_connectivity = false;
  const Topology topo = make_uniform(config);  // allowed to be disconnected.
  EXPECT_EQ(topo.num_sensors(), 40u);
}

TEST(Generators, CompleteTopologyIsComplete) {
  const Topology topo = make_complete(10, 0.7);
  EXPECT_EQ(topo.num_nodes(), 11u);
  EXPECT_EQ(topo.num_links(), 11u * 10u);
  for (NodeId a = 0; a < topo.num_nodes(); ++a) {
    for (NodeId b = 0; b < topo.num_nodes(); ++b) {
      if (a == b) continue;
      ASSERT_TRUE(topo.has_link(a, b));
      EXPECT_DOUBLE_EQ(topo.prr(a, b).value(), 0.7);
    }
  }
  EXPECT_THROW((void)make_complete(0, 0.7), InvalidArgument);
  EXPECT_THROW((void)make_complete(5, 0.0), InvalidArgument);
}

TEST(Generators, ClusteredPlacementStaysInArea) {
  ClusterConfig config;
  config.base.num_sensors = 80;
  config.base.seed = 9;
  const Topology topo = make_clustered(config);
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    EXPECT_GE(topo.position(n).x, 0.0);
    EXPECT_LE(topo.position(n).x, config.base.area_side_m);
  }
}

TEST(Generators, SpatialHashMatchesLegacyAllPairsBitForBit) {
  // The grid-based builder must replay the historical nested-loop draw
  // sequence exactly: same positions, then the same RSSI/asymmetry draws
  // in ascending (a, b) pair order. Reconstruct that legacy algorithm here
  // and demand link-for-link, bit-for-bit equality.
  GeneratorConfig config;
  config.num_sensors = 120;
  config.area_side_m = 300.0;
  config.seed = 17;
  config.require_connectivity = false;  // exactly one attempt, seed verbatim.
  const Topology topo = make_uniform(config);

  Rng rng(config.seed);
  std::vector<Point2D> pts(config.num_sensors + 1);
  for (auto& p : pts) {
    p = Point2D{rng.uniform() * config.area_side_m,
                rng.uniform() * config.area_side_m};
  }
  Topology reference(std::move(pts));
  const RadioModel& radio = config.radio;
  const double max_range = radio.range_at_prr(0.01) * 1.5;
  const auto n = static_cast<NodeId>(reference.num_nodes());
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b) {
      const double dist = distance(reference.position(a),
                                   reference.position(b));
      if (dist > max_range) continue;
      const double rssi = radio.sample_rssi_dbm(dist, rng);
      const double asym = 0.5 * rng.normal();
      const double prr_ab = radio.prr_of_rssi(rssi + asym);
      const double prr_ba = radio.prr_of_rssi(rssi - asym);
      if (prr_ab >= radio.min_usable_prr) reference.add_link(a, b, prr_ab);
      if (prr_ba >= radio.min_usable_prr) reference.add_link(b, a, prr_ba);
    }
  }

  ASSERT_EQ(topo.num_links(), reference.num_links());
  for (NodeId v = 0; v < topo.num_nodes(); ++v) {
    EXPECT_EQ(topo.position(v), reference.position(v));
    const auto got = topo.neighbors(v);
    const auto want = reference.neighbors(v);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].to, want[i].to);
      EXPECT_EQ(got[i].prr, want[i].prr);  // bit-identical, not just close.
    }
  }
}

TEST(Generators, PairKeyedLinksAreRecomputableInIsolation) {
  // In kPairKeyed mode every unordered pair draws from its own stream
  // seeded by (attempt seed, min, max) — so any link's PRR can be
  // recomputed knowing only the endpoints, independent of enumeration
  // order. That property is what makes the realization order-independent.
  GeneratorConfig config;
  config.num_sensors = 90;
  config.area_side_m = 260.0;
  config.seed = 31;
  config.require_connectivity = false;
  config.link_rng = LinkRngMode::kPairKeyed;
  const Topology topo = make_uniform_disk(config);

  const RadioModel& radio = config.radio;
  const double max_range = radio.range_at_prr(0.01) * 1.5;
  std::size_t checked = 0;
  for (NodeId a = 0; a < topo.num_nodes(); ++a) {
    for (const Link& l : topo.neighbors(a)) {
      if (l.to < a) continue;  // check each unordered pair from its low end.
      const double dist = distance(topo.position(a), topo.position(l.to));
      ASSERT_LE(dist, max_range);
      Rng pair_rng(pair_stream_seed(config.seed, a, l.to));
      const double rssi = radio.sample_rssi_dbm(dist, pair_rng);
      const double asym = 0.5 * pair_rng.normal();
      EXPECT_EQ(l.prr, radio.prr_of_rssi(rssi + asym));
      const auto back = topo.prr(l.to, a);
      if (back.has_value()) {
        EXPECT_EQ(back.value(), radio.prr_of_rssi(rssi - asym));
      }
      ++checked;
    }
  }
  EXPECT_GT(checked, 100u);  // the disk actually produced a real link set.
}

TEST(Generators, SequentialAndKeyedModesDifferButShareGeometry) {
  GeneratorConfig config;
  config.num_sensors = 70;
  config.area_side_m = 200.0;
  config.seed = 4;
  config.require_connectivity = false;
  const Topology sequential = make_uniform(config);
  config.link_rng = LinkRngMode::kPairKeyed;
  const Topology keyed = make_uniform(config);
  ASSERT_EQ(sequential.num_nodes(), keyed.num_nodes());
  for (NodeId v = 0; v < sequential.num_nodes(); ++v) {
    EXPECT_EQ(sequential.position(v), keyed.position(v));  // placement shared.
  }
  // The two draw schemes are different random realizations of the same
  // radio model; identical link sets would mean the mode flag is dead.
  bool any_diff = sequential.num_links() != keyed.num_links();
  for (NodeId v = 0; !any_diff && v < sequential.num_nodes(); ++v) {
    const auto a = sequential.neighbors(v);
    const auto b = keyed.neighbors(v);
    any_diff = a.size() != b.size();
    for (std::size_t i = 0; !any_diff && i < a.size(); ++i) {
      any_diff = a[i].to != b[i].to || a[i].prr != b[i].prr;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Generators, UniformDiskCentersSourceAndStaysInDisk) {
  GeneratorConfig config;
  config.num_sensors = 150;
  config.area_side_m = 300.0;
  config.seed = 2;
  const Topology topo = make_uniform_disk(config);
  EXPECT_EQ(topo.num_sensors(), 150u);
  const double radius = 0.5 * config.area_side_m;
  const Point2D center{radius, radius};
  EXPECT_EQ(topo.position(0), center);
  for (NodeId v = 0; v < topo.num_nodes(); ++v) {
    EXPECT_LE(distance(topo.position(v), center), radius + 1e-9);
  }
  EXPECT_GT(topo.mean_degree(), 1.0);
}

TEST(Generators, ScaledClusterConfigKeepsGreenOrbsDensity) {
  const ClusterConfig at_paper_size = scaled_cluster_config(298, 5);
  EXPECT_EQ(at_paper_size.base.num_sensors, 298u);
  EXPECT_NEAR(at_paper_size.base.area_side_m, 560.0, 1e-9);
  EXPECT_DOUBLE_EQ(at_paper_size.base.radio.path_loss_exponent, 3.3);

  // Density (sensors per unit area) is invariant across sizes.
  const ClusterConfig big = scaled_cluster_config(4 * 298, 5);
  EXPECT_NEAR(big.base.area_side_m, 2.0 * 560.0, 1e-9);
  EXPECT_EQ(big.num_clusters, (4u * 298u) / 17u);
  EXPECT_EQ(scaled_cluster_config(10, 1).num_clusters, 4u);  // floor.

  // A mid-size instance builds and keeps a GreenOrbs-like degree.
  ClusterConfig mid = scaled_cluster_config(600, 3);
  mid.base.require_connectivity = false;
  mid.base.link_rng = LinkRngMode::kPairKeyed;
  const Topology topo = make_clustered(mid);
  EXPECT_EQ(topo.num_sensors(), 600u);
  EXPECT_GT(topo.mean_degree(), 4.0);
  EXPECT_LT(topo.mean_degree(), 120.0);
}

class GeneratorSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorSeedSweep, GreenOrbsLikeAlwaysViable) {
  const Topology topo = make_greenorbs_like(GetParam());
  EXPECT_EQ(topo.num_sensors(), 298u);
  EXPECT_GE(static_cast<double>(topo.reachable_count(0)),
            0.99 * static_cast<double>(topo.num_nodes()));
  EXPECT_GT(topo.mean_degree(), 4.0);   // dense enough to flood.
  EXPECT_LT(topo.mean_degree(), 120.0); // but clearly multi-hop.
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 42));

}  // namespace
}  // namespace ldcf::topology
