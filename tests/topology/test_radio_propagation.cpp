#include "ldcf/topology/radio_propagation.hpp"

#include <gtest/gtest.h>

#include "ldcf/common/error.hpp"

namespace ldcf::topology {
namespace {

TEST(RadioModel, RssiDecaysWithDistance) {
  const RadioModel radio{};
  double prev = radio.mean_rssi_dbm(1.0);
  for (double d : {5.0, 10.0, 50.0, 100.0, 200.0}) {
    const double rssi = radio.mean_rssi_dbm(d);
    EXPECT_LT(rssi, prev) << "d=" << d;
    prev = rssi;
  }
}

TEST(RadioModel, RssiFollowsLogDistanceLaw) {
  const RadioModel radio{};
  // Every 10x distance costs 10*n dB.
  const double at_10 = radio.mean_rssi_dbm(10.0);
  const double at_100 = radio.mean_rssi_dbm(100.0);
  EXPECT_NEAR(at_10 - at_100, 10.0 * radio.path_loss_exponent, 1e-9);
}

TEST(RadioModel, SubMeterClampsToReference) {
  const RadioModel radio{};
  EXPECT_DOUBLE_EQ(radio.mean_rssi_dbm(0.1), radio.mean_rssi_dbm(1.0));
  EXPECT_THROW((void)radio.mean_rssi_dbm(-1.0), InvalidArgument);
}

TEST(RadioModel, PrrLogisticShape) {
  const RadioModel radio{};
  // At the sensitivity threshold PRR is exactly 1/2.
  EXPECT_NEAR(radio.prr_of_rssi(radio.sensitivity_dbm), 0.5, 1e-12);
  // Well above: ~1; well below: ~0.
  EXPECT_GT(radio.prr_of_rssi(radio.sensitivity_dbm + 20.0), 0.99);
  EXPECT_LT(radio.prr_of_rssi(radio.sensitivity_dbm - 20.0), 0.01);
  // Monotone.
  EXPECT_LT(radio.prr_of_rssi(-95.0), radio.prr_of_rssi(-85.0));
}

TEST(RadioModel, RangeAtPrrInvertsTheModel) {
  const RadioModel radio{};
  for (double prr : {0.9, 0.5, 0.1}) {
    const double range = radio.range_at_prr(prr);
    ASSERT_GT(range, 1.0);
    EXPECT_NEAR(radio.prr_of_rssi(radio.mean_rssi_dbm(range)), prr, 1e-6)
        << "prr=" << prr;
  }
  // Better quality demands shorter range.
  EXPECT_LT(radio.range_at_prr(0.9), radio.range_at_prr(0.1));
  EXPECT_THROW((void)radio.range_at_prr(0.0), InvalidArgument);
  EXPECT_THROW((void)radio.range_at_prr(1.0), InvalidArgument);
}

TEST(RadioModel, ShadowingIsZeroMean) {
  const RadioModel radio{};
  Rng rng(5);
  double sum = 0.0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    sum += radio.sample_rssi_dbm(50.0, rng) - radio.mean_rssi_dbm(50.0);
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.1);
}

TEST(RadioModel, SamplePrrSpreadCoversQualityMix) {
  // Near the PRR knee, shadowing must produce both good and bad links —
  // the heterogeneity the paper's trace exhibits.
  const RadioModel radio{};
  const double knee_dist = radio.range_at_prr(0.5);
  Rng rng(11);
  int good = 0;
  int bad = 0;
  for (int i = 0; i < 2000; ++i) {
    const double prr = radio.sample_prr(knee_dist, rng);
    if (prr > 0.9) ++good;
    if (prr < 0.1) ++bad;
  }
  EXPECT_GT(good, 100);
  EXPECT_GT(bad, 100);
}

}  // namespace
}  // namespace ldcf::topology
