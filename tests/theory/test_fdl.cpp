#include "ldcf/theory/fdl.hpp"

#include <gtest/gtest.h>

#include "ldcf/common/error.hpp"
#include "ldcf/theory/fwl.hpp"

namespace ldcf::theory {
namespace {

TEST(FdlCompact, Lemma3ClosedForm) {
  // FDL = M + ceil(log2(N+1)) - 1 compact slots.
  EXPECT_EQ(fdl_compact_full_duplex(4, 1), 3u);   // Fig. 3: one packet, c = 3.
  EXPECT_EQ(fdl_compact_full_duplex(4, 2), 4u);   // Fig. 3: two packets.
  EXPECT_EQ(fdl_compact_full_duplex(1024, 10), 10u + 11u - 1u);
}

TEST(Table1, SmallMBranchMatchesPaper) {
  // Paper Table I (M < m): W_p = m + p.
  const std::uint64_t n = 1024;  // m = 11.
  const std::uint64_t m = m_of(n);
  const std::uint64_t big_m = 5;  // < m
  const auto w = table1_waitings(n, big_m);
  ASSERT_EQ(w.size(), big_m);
  for (std::uint64_t p = 0; p < big_m; ++p) {
    EXPECT_EQ(w[p], m + p) << "p=" << p;
  }
}

TEST(Table1, LargeMBranchSaturates) {
  // Paper Table I (M >= m): W_p saturates at m + (m-1) from p = m-1 on.
  const std::uint64_t n = 1024;
  const std::uint64_t m = m_of(n);
  const std::uint64_t big_m = 30;  // >= m
  const auto w = table1_waitings(n, big_m);
  for (std::uint64_t p = 0; p + 1 < m; ++p) {
    EXPECT_EQ(w[p], m + p) << "p=" << p;
  }
  for (std::uint64_t p = m - 1; p < big_m; ++p) {
    EXPECT_EQ(w[p], m + (m - 1)) << "p=" << p;
  }
}

TEST(Table1, RejectsOutOfRangeIndex) {
  EXPECT_THROW((void)table1_waiting(16, 3, 3), InvalidArgument);
}

TEST(ExpectedFdl, Theorem1BothBranches) {
  const std::uint64_t n = 1024;  // m = 11.
  const DutyCycle duty{5};
  // M < m branch: T(m/2 + M - 1).
  EXPECT_DOUBLE_EQ(expected_fdl(n, 5, duty), 5.0 * (5.5 + 5.0 - 1.0));
  // M >= m branch: T(m + M/2 - 1).
  EXPECT_DOUBLE_EQ(expected_fdl(n, 20, duty), 5.0 * (11.0 + 10.0 - 1.0));
}

TEST(ExpectedFdl, ContinuousAtKnee) {
  for (std::uint64_t n : {255ULL, 1024ULL, 4096ULL}) {
    const std::uint64_t m = m_of(n);
    const DutyCycle duty{10};
    const double below = expected_fdl(n, m - 1, duty);
    const double at = expected_fdl(n, m, duty);
    // Crossing the knee adds T/2 .. T per extra packet; no discontinuity
    // larger than one period.
    EXPECT_GT(at, below);
    EXPECT_LE(at - below, static_cast<double>(duty.period) + 1e-9);
  }
}

TEST(ExpectedFdl, SlopeHalvesAfterKnee) {
  // Fig. 5's message: below the knee each extra packet costs T slots, above
  // it only T/2 (pipelining).
  const std::uint64_t n = 1024;
  const std::uint64_t m = m_of(n);
  const DutyCycle duty{10};
  const double slope_below =
      expected_fdl(n, m - 2, duty) - expected_fdl(n, m - 3, duty);
  const double slope_above =
      expected_fdl(n, m + 10, duty) - expected_fdl(n, m + 9, duty);
  EXPECT_DOUBLE_EQ(slope_below, 10.0);
  EXPECT_DOUBLE_EQ(slope_above, 5.0);
}

TEST(ExpectedFdl, ScalesLinearlyWithPeriod) {
  // Corollary 1: T is a multiplicative factor.
  const std::uint64_t n = 298;
  for (std::uint64_t big_m : {3ULL, 10ULL, 50ULL}) {
    const double at_t5 = expected_fdl(n, big_m, DutyCycle{5});
    const double at_t10 = expected_fdl(n, big_m, DutyCycle{10});
    const double at_t50 = expected_fdl(n, big_m, DutyCycle{50});
    EXPECT_DOUBLE_EQ(at_t10, 2.0 * at_t5);
    EXPECT_DOUBLE_EQ(at_t50, 10.0 * at_t5);
  }
}

TEST(MaxFdl, TwiceTheExpectation) {
  // Proof of Theorem 1: FDL <= T*FWL and E[FDL] = T*FWL/2.
  for (std::uint64_t big_m : {1ULL, 5ULL, 40ULL}) {
    const std::uint64_t n = 256;
    const DutyCycle duty{20};
    EXPECT_DOUBLE_EQ(max_fdl(n, big_m, duty),
                     2.0 * expected_fdl(n, big_m, duty));
  }
}

TEST(FdlBoundsTest, Theorem2OrdersAndContainsTheorem1) {
  for (std::uint64_t n : {100ULL, 298ULL, 1000ULL, 5000ULL}) {
    for (std::uint64_t big_m = 1; big_m <= 40; ++big_m) {
      const DutyCycle duty{20};
      const auto b = expected_fdl_bounds(n, big_m, duty);
      EXPECT_LE(b.lower, b.upper) << "n=" << n << " M=" << big_m;
      // The Theorem 1 value (exact for N = 2^n) equals the lower bound.
      EXPECT_DOUBLE_EQ(b.lower, expected_fdl(n, big_m, duty));
    }
  }
}

TEST(FdlBoundsTest, UpperBoundGapIsBoundedByMPlusHalfM) {
  // Gap above the knee is exactly T*m; below it T*(m/2 + M/2 - 1/2).
  const std::uint64_t n = 1024;
  const std::uint64_t m = m_of(n);
  const DutyCycle duty{4};
  const auto above = expected_fdl_bounds(n, m + 5, duty);
  EXPECT_DOUBLE_EQ(above.upper - above.lower,
                   static_cast<double>(duty.period) * static_cast<double>(m));
}

TEST(BlockingWindowTest, Corollary1) {
  EXPECT_EQ(blocking_window(1024), 10u);  // m - 1 = 11 - 1.
  EXPECT_EQ(blocking_window(4), 2u);
  EXPECT_EQ(knee_point(1024), 11u);
  EXPECT_EQ(knee_point(298), 9u);
}

struct Fig5Case {
  std::uint64_t n;
  std::uint32_t period;
};

class Fig5Sweep : public ::testing::TestWithParam<Fig5Case> {};

TEST_P(Fig5Sweep, DelayIsNondecreasingInM) {
  const auto [n, period] = GetParam();
  double prev = 0.0;
  for (std::uint64_t big_m = 1; big_m <= 20; ++big_m) {
    const double fdl = expected_fdl(n, big_m, DutyCycle{period});
    EXPECT_GE(fdl, prev);
    prev = fdl;
  }
}

TEST_P(Fig5Sweep, LargerNetworksAreSlower) {
  const auto [n, period] = GetParam();
  for (std::uint64_t big_m = 1; big_m <= 20; ++big_m) {
    EXPECT_LE(expected_fdl(n, big_m, DutyCycle{period}),
              expected_fdl(4 * n, big_m, DutyCycle{period}));
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperConfigs, Fig5Sweep,
    ::testing::Values(Fig5Case{256, 5}, Fig5Case{1024, 5}, Fig5Case{4096, 5},
                      Fig5Case{1024, 10}, Fig5Case{1024, 1}));

}  // namespace
}  // namespace ldcf::theory
