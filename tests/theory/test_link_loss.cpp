#include "ldcf/theory/link_loss.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "ldcf/common/error.hpp"

namespace ldcf::theory {
namespace {

TEST(KClass, PaperLegendValues) {
  // Fig. 7 legend: quality 80/70/60/50% <-> k = 1.25/1.42/1.67/2.
  EXPECT_NEAR(k_class_of_quality(0.80), 1.25, 1e-12);
  EXPECT_NEAR(k_class_of_quality(0.70), 1.4286, 1e-3);
  EXPECT_NEAR(k_class_of_quality(0.60), 1.6667, 1e-3);
  EXPECT_NEAR(k_class_of_quality(0.50), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(k_class_of_quality(1.0), 1.0);
}

TEST(KClass, RejectsInvalidQuality) {
  EXPECT_THROW((void)k_class_of_quality(0.0), InvalidArgument);
  EXPECT_THROW((void)k_class_of_quality(1.5), InvalidArgument);
  EXPECT_THROW((void)k_class_of_quality(-0.2), InvalidArgument);
}

TEST(GrowthRate, SatisfiesCharacteristicEquation) {
  for (double k : {1.0, 1.25, 1.42, 1.67, 2.0}) {
    for (std::uint32_t t : {1u, 5u, 10u, 20u, 50u}) {
      const double lambda = growth_rate(k, t);
      const double d = k * t;
      EXPECT_NEAR(std::pow(lambda, d + 1.0),
                  std::pow(lambda, d) + 1.0, 1e-8)
          << "k=" << k << " T=" << t;
      EXPECT_GT(lambda, 1.0);
      EXPECT_LE(lambda, 2.0);
    }
  }
}

TEST(GrowthRate, ShrinksWithPeriodAndLoss) {
  // Longer periods and lossier links both slow the exponential growth.
  EXPECT_GT(growth_rate(1.0, 5), growth_rate(1.0, 20));
  EXPECT_GT(growth_rate(1.0, 20), growth_rate(2.0, 20));
  EXPECT_GT(growth_rate(1.25, 10), growth_rate(1.67, 10));
}

TEST(GrowthRate, PerfectInstantNetworkDoubles) {
  // d = kT -> 0 degenerates to doubling per slot; with T >= 1 the rate is
  // strictly below 2 but approaches it as T -> 1, k -> 1.
  const double lambda = growth_rate(1.0, 1);
  EXPECT_GT(lambda, 1.6);
  EXPECT_LT(lambda, 2.0);
}

TEST(PredictedDelay, GrowsAsDutyShrinks) {
  // Fig. 7's x-axis behaviour: smaller duty cycle (larger T) -> more delay.
  const std::uint64_t n = 298;
  double prev = 0.0;
  for (std::uint32_t t : {5u, 10u, 14u, 20u, 25u, 33u, 50u}) {
    const double d = predicted_flooding_delay(n, 1.25, DutyCycle{t});
    EXPECT_GT(d, prev) << "T=" << t;
    prev = d;
  }
}

TEST(PredictedDelay, LossMagnifiesDutyCyclePenalty) {
  // The paper's core §IV-B message: the delay gap between k-classes widens
  // as the duty cycle shrinks (the curves fan out in Fig. 7).
  const std::uint64_t n = 298;
  const double gap_high_duty =
      predicted_flooding_delay(n, 2.0, DutyCycle{5}) -
      predicted_flooding_delay(n, 1.25, DutyCycle{5});
  const double gap_low_duty =
      predicted_flooding_delay(n, 2.0, DutyCycle{50}) -
      predicted_flooding_delay(n, 1.25, DutyCycle{50});
  EXPECT_GT(gap_high_duty, 0.0);
  EXPECT_GT(gap_low_duty, 2.0 * gap_high_duty);
}

TEST(PredictedDelay, CoverageVariantIsSmaller) {
  const std::uint64_t n = 298;
  const DutyCycle duty{20};
  EXPECT_LT(predicted_coverage_delay(n, 0.99, 1.25, duty),
            predicted_flooding_delay(n, 1.25, duty));
  EXPECT_DOUBLE_EQ(predicted_coverage_delay(n, 1.0, 1.25, duty),
                   predicted_flooding_delay(n, 1.25, duty));
}

TEST(PredictedDelay, InvalidArgumentsRejected) {
  EXPECT_THROW((void)predicted_coverage_delay(0, 0.99, 1.25, DutyCycle{5}),
               InvalidArgument);
  EXPECT_THROW((void)predicted_coverage_delay(10, 0.0, 1.25, DutyCycle{5}),
               InvalidArgument);
  EXPECT_THROW((void)growth_rate(0.5, 5), InvalidArgument);
  EXPECT_THROW((void)growth_rate(1.0, 0), InvalidArgument);
}

TEST(LossDelaySweep, ProducesFullGrid) {
  const std::vector<double> ks{1.25, 2.0};
  const std::vector<std::uint32_t> periods{5, 10, 20};
  const auto pts = loss_delay_sweep(298, ks, periods);
  ASSERT_EQ(pts.size(), 6u);
  // Rows are ordered k-major, duty descending within k (period ascending).
  EXPECT_DOUBLE_EQ(pts[0].k, 1.25);
  EXPECT_DOUBLE_EQ(pts[0].duty_ratio, 0.2);
  EXPECT_DOUBLE_EQ(pts[5].k, 2.0);
  EXPECT_DOUBLE_EQ(pts[5].duty_ratio, 0.05);
  for (const auto& p : pts) EXPECT_GT(p.delay_slots, 0.0);
}

TEST(RecursionCoverage, TracksEigenvaluePrediction) {
  // The deterministic recursion and the eigenvalue closed form must agree
  // within a small constant factor (same exponential rate).
  const std::uint64_t n = 298;
  for (double k : {1.0, 1.25, 2.0}) {
    for (std::uint32_t t : {5u, 20u}) {
      const auto rec = static_cast<double>(
          recursion_coverage_slots(n, 1.0, k, DutyCycle{t}));
      const double eig = predicted_flooding_delay(n, k, DutyCycle{t});
      EXPECT_GT(rec, 0.5 * eig) << "k=" << k << " T=" << t;
      EXPECT_LT(rec, 2.0 * eig + 2.0 * k * t) << "k=" << k << " T=" << t;
    }
  }
}

TEST(RecursionCoverage, MonotoneInCoverage) {
  const std::uint64_t n = 298;
  const DutyCycle duty{20};
  EXPECT_LE(recursion_coverage_slots(n, 0.5, 1.25, duty),
            recursion_coverage_slots(n, 0.99, 1.25, duty));
  EXPECT_LE(recursion_coverage_slots(n, 0.99, 1.25, duty),
            recursion_coverage_slots(n, 1.0, 1.25, duty));
}

class LinkLossGrid
    : public ::testing::TestWithParam<std::tuple<double, std::uint32_t>> {};

TEST_P(LinkLossGrid, DelayFiniteAndPositive) {
  const auto [k, t] = GetParam();
  const double d = predicted_flooding_delay(298, k, DutyCycle{t});
  EXPECT_GT(d, 0.0);
  EXPECT_LT(d, 1e7);
}

INSTANTIATE_TEST_SUITE_P(
    PaperGrid, LinkLossGrid,
    ::testing::Combine(::testing::Values(1.0, 1.25, 1.42, 1.67, 2.0),
                       ::testing::Values(5u, 10u, 14u, 20u, 25u, 33u, 50u)));

}  // namespace
}  // namespace ldcf::theory
