#include "ldcf/theory/fwl.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "ldcf/common/error.hpp"

namespace ldcf::theory {
namespace {

TEST(MOf, MatchesCeilLog2OfNPlusOne) {
  EXPECT_EQ(m_of(1), 1u);    // ceil(log2(2)) = 1
  EXPECT_EQ(m_of(3), 2u);    // ceil(log2(4)) = 2
  EXPECT_EQ(m_of(4), 3u);    // ceil(log2(5)) = 3 (Fig. 3's 4-sensor example)
  EXPECT_EQ(m_of(255), 8u);  // ceil(log2(256)) = 8
  EXPECT_EQ(m_of(256), 9u);
  EXPECT_EQ(m_of(1024), 11u);
  EXPECT_EQ(m_of(298), 9u);  // GreenOrbs scale: ceil(log2(299)).
}

TEST(MOf, RejectsEmptyNetwork) { EXPECT_THROW((void)m_of(0), InvalidArgument); }

TEST(ExpectedFwl, ReliableLinksReduceToCeilLog2) {
  // mu = 2 (reliable links): Lemma 2 reduces to Eq. (6).
  EXPECT_EQ(expected_fwl(1024, 2.0), m_of(1024));
  EXPECT_EQ(expected_fwl(255, 2.0), m_of(255));
  EXPECT_EQ(expected_fwl(298, 2.0), m_of(298));
}

TEST(ExpectedFwl, LossyLinksInflateWaitings) {
  // Smaller mu -> strictly more waitings for the same N.
  const std::uint64_t n = 1024;
  std::uint64_t prev = expected_fwl(n, 2.0);
  for (double mu : {1.8, 1.5, 1.3, 1.1, 1.01}) {
    const std::uint64_t fwl = expected_fwl(n, mu);
    EXPECT_GE(fwl, prev) << "mu=" << mu;
    prev = fwl;
  }
  // mu -> 1 is unbounded (the paper notes FWL has no upper bound).
  EXPECT_GT(expected_fwl(n, 1.001), 100u);
}

TEST(ExpectedFwl, MatchesClosedForm) {
  for (double mu : {1.2, 1.5, 1.75, 2.0}) {
    for (std::uint64_t n : {16ULL, 298ULL, 4096ULL}) {
      const double expected =
          std::ceil(std::log2(static_cast<double>(n) + 1.0) / std::log2(mu) -
                    1e-12);
      EXPECT_EQ(expected_fwl(n, mu), static_cast<std::uint64_t>(expected))
          << "n=" << n << " mu=" << mu;
    }
  }
}

TEST(ExpectedFwl, RejectsOutOfRangeMu) {
  EXPECT_THROW((void)expected_fwl(16, 1.0), InvalidArgument);
  EXPECT_THROW((void)expected_fwl(16, 2.5), InvalidArgument);
  EXPECT_THROW((void)expected_fwl(16, 0.5), InvalidArgument);
}

TEST(MultiPacketFwl, SinglePacketEqualsM) {
  // FWL(1) = m + 2*1 - 2 = m: the single-packet limit of Eq. (6).
  EXPECT_EQ(multi_packet_fwl(1024, 1), m_of(1024));
  EXPECT_EQ(multi_packet_fwl(4, 1), m_of(4));
}

TEST(MultiPacketFwl, PiecewiseFormula) {
  const std::uint64_t n = 1024;  // m = 11.
  const std::uint64_t m = m_of(n);
  // Below the knee: slope 2 per packet.
  for (std::uint64_t big_m = 1; big_m < m; ++big_m) {
    EXPECT_EQ(multi_packet_fwl(n, big_m), m + 2 * big_m - 2);
  }
  // At and above the knee: slope 1 per packet.
  for (std::uint64_t big_m = m; big_m < m + 20; ++big_m) {
    EXPECT_EQ(multi_packet_fwl(n, big_m), 2 * m + big_m - 2);
  }
}

TEST(MultiPacketFwl, ContinuousAtKnee) {
  for (std::uint64_t n : {16ULL, 298ULL, 1024ULL}) {
    const std::uint64_t m = m_of(n);
    // The two branches agree at M = m.
    EXPECT_EQ(m + 2 * m - 2, 2 * m + m - 2);
    EXPECT_EQ(multi_packet_fwl(n, m), 3 * m - 2);
  }
}

TEST(ExpiredTime, GrowsLinearlyWithPacketIndex) {
  const std::uint64_t n = 256;
  const std::uint64_t m = m_of(n);
  EXPECT_EQ(expired_time(n, 0), m);
  EXPECT_EQ(expired_time(n, 5), 5 + m);
  EXPECT_EQ(expired_time(n, 100), 100 + m);
}

class FwlSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FwlSweep, MonotoneInNetworkSize) {
  const std::uint64_t n = GetParam();
  EXPECT_LE(expected_fwl(n, 2.0), expected_fwl(2 * n, 2.0));
  EXPECT_LE(multi_packet_fwl(n, 10), multi_packet_fwl(2 * n, 10));
}

INSTANTIATE_TEST_SUITE_P(NetworkSizes, FwlSweep,
                         ::testing::Values(1, 2, 7, 16, 100, 298, 1024, 65535));

}  // namespace
}  // namespace ldcf::theory
