// Cross-module consistency of the §IV results: relations between Lemma 2,
// Lemma 3, Theorems 1-2 and the link-loss model that must hold identically,
// checked over parameter grids.
#include <cmath>

#include <gtest/gtest.h>

#include "ldcf/theory/compact_flooding.hpp"
#include "ldcf/theory/fdl.hpp"
#include "ldcf/theory/fwl.hpp"
#include "ldcf/theory/link_loss.hpp"

namespace ldcf::theory {
namespace {

class Grid : public ::testing::TestWithParam<
                 std::tuple<std::uint64_t, std::uint64_t, std::uint32_t>> {};

TEST_P(Grid, ExpectedFdlIsHalfPeriodTimesFwl) {
  // The proof of Theorem 1: E[FDL] = T * FWL / 2 with uniform waits.
  const auto [n, m_pkts, period] = GetParam();
  const DutyCycle duty{period};
  EXPECT_NEAR(expected_fdl(n, m_pkts, duty),
              0.5 * static_cast<double>(period) *
                  static_cast<double>(multi_packet_fwl(n, m_pkts)),
              1e-9);
}

TEST_P(Grid, MaxFdlIsPeriodTimesFwl) {
  const auto [n, m_pkts, period] = GetParam();
  const DutyCycle duty{period};
  EXPECT_NEAR(max_fdl(n, m_pkts, duty),
              static_cast<double>(period) *
                  static_cast<double>(multi_packet_fwl(n, m_pkts)),
              1e-9);
}

TEST_P(Grid, Theorem2LowerEqualsTheorem1) {
  const auto [n, m_pkts, period] = GetParam();
  const DutyCycle duty{period};
  const auto bounds = expected_fdl_bounds(n, m_pkts, duty);
  EXPECT_DOUBLE_EQ(bounds.lower, expected_fdl(n, m_pkts, duty));
  EXPECT_LE(bounds.upper, max_fdl(n, m_pkts, duty) +
            static_cast<double>(period) * static_cast<double>(m_of(n)));
}

TEST_P(Grid, DelayPerPeriodIsScaleFree) {
  // T is purely multiplicative in Theorem 1: FDL/T depends only on (N, M).
  const auto [n, m_pkts, period] = GetParam();
  const double normalized =
      expected_fdl(n, m_pkts, DutyCycle{period}) / period;
  const double at_unit = expected_fdl(n, m_pkts, DutyCycle{1});
  EXPECT_NEAR(normalized, at_unit, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Grid,
    ::testing::Combine(::testing::Values(16ULL, 298ULL, 4096ULL),
                       ::testing::Values(1ULL, 7ULL, 40ULL),
                       ::testing::Values(1u, 5u, 20u, 50u)));

TEST(Consistency, Lemma2ReliableEqualsAlgorithm1SinglePacket) {
  // The GW limit with mu = 2 (reliable links) must equal the compact-slot
  // coverage of an exact Algorithm 1 single-packet run.
  for (const std::uint64_t n : {2ULL, 16ULL, 128ULL, 1024ULL}) {
    const auto run = run_compact_flooding(CompactRunConfig{n, 1, false});
    EXPECT_EQ(run.completion[0], expected_fwl(n, 2.0)) << "n=" << n;
  }
}

TEST(Consistency, CharacteristicEquationInvariant) {
  // lambda^(T+1) = lambda^T + 1 rearranges to lambda^T (lambda - 1) = 1:
  // the per-period growth factor times the per-slot excess rate is exactly
  // one. (Per-period growth exceeds 2 for large T — staggered wakeups
  // pipeline deliveries within a period — while lambda itself stays in
  // (1, 2].)
  double prev_lambda = 2.5;
  double prev_per_period = 0.0;
  for (const std::uint32_t t : {1u, 2u, 5u, 20u, 50u}) {
    const double lambda = growth_rate(1.0, t);
    const double per_period = std::pow(lambda, t);
    EXPECT_NEAR(per_period * (lambda - 1.0), 1.0, 1e-6) << "T=" << t;
    EXPECT_LT(lambda, prev_lambda) << "T=" << t;       // rate per slot falls,
    EXPECT_GT(per_period, prev_per_period) << "T=" << t;  // per period rises.
    prev_lambda = lambda;
    prev_per_period = per_period;
  }
}

TEST(Consistency, LossyCoverTimeDominatesReliableCoverTime) {
  for (const std::uint32_t t : {5u, 20u, 50u}) {
    const DutyCycle duty{t};
    double prev = predicted_flooding_delay(298, 1.0, duty);
    for (const double k : {1.25, 1.67, 2.0, 3.0}) {
      const double d = predicted_flooding_delay(298, k, duty);
      EXPECT_GT(d, prev) << "k=" << k << " T=" << t;
      prev = d;
    }
  }
}

TEST(Consistency, EigenvalueDelayScalesLikeKTimesT) {
  // lambda - 1 ~ ln(2)/(kT) for large kT, so the predicted delay grows
  // ~ linearly in k*T; check the ratio stays within 25% when kT doubles.
  const double d1 = predicted_flooding_delay(298, 1.0, DutyCycle{20});
  const double d2 = predicted_flooding_delay(298, 2.0, DutyCycle{20});
  const double d3 = predicted_flooding_delay(298, 1.0, DutyCycle{40});
  EXPECT_NEAR(d2 / d1, 2.0, 0.5);
  EXPECT_NEAR(d3 / d1, 2.0, 0.5);
  EXPECT_NEAR(d2, d3, 0.15 * d2);  // k and T enter symmetrically via kT.
}

TEST(Consistency, ExpiredTimeCoversObservedCompletion) {
  // expired_time is exactly the Lemma 3 per-packet completion bound.
  for (const std::uint64_t n : {4ULL, 64ULL}) {
    const std::uint64_t m_pkts = 3 * m_of(n);
    const auto run = run_compact_flooding(CompactRunConfig{n, m_pkts, false});
    for (PacketId p = 0; p < m_pkts; ++p) {
      EXPECT_EQ(expired_time(n, p), run.completion[p]) << "p=" << p;
    }
  }
}

}  // namespace
}  // namespace ldcf::theory
