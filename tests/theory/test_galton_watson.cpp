#include "ldcf/theory/galton_watson.hpp"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "ldcf/common/error.hpp"
#include "ldcf/theory/fwl.hpp"

namespace ldcf::theory {
namespace {

TEST(GwSimulate, ReliableLinksDoubleEachSlot) {
  // q = 1: X(c+1) = 2 X(c) until the cap, so coverage takes exactly
  // ceil(log2(1+N)) slots.
  Rng rng(1);
  for (std::uint64_t n : {1ULL, 4ULL, 255ULL, 256ULL, 1023ULL, 1024ULL}) {
    const GwRun run = simulate_dissemination(GwParams{n, 1.0}, rng);
    EXPECT_EQ(run.cover_slots, m_of(n)) << "n=" << n;
    // Trajectory doubles: 1, 2, 4, ... capped at 1+N.
    for (std::size_t c = 0; c + 1 < run.counts.size(); ++c) {
      const std::uint64_t expected =
          std::min<std::uint64_t>(run.counts[c] * 2, n + 1);
      EXPECT_EQ(run.counts[c + 1], expected);
    }
  }
}

TEST(GwSimulate, TrajectoryIsMonotone) {
  Rng rng(7);
  const GwRun run = simulate_dissemination(GwParams{512, 0.6}, rng);
  ASSERT_GE(run.counts.size(), 2u);
  EXPECT_EQ(run.counts.front(), 1u);
  EXPECT_EQ(run.counts.back(), 513u);
  for (std::size_t c = 0; c + 1 < run.counts.size(); ++c) {
    EXPECT_LE(run.counts[c], run.counts[c + 1]);
    // At most doubling per slot (each holder recruits at most one).
    EXPECT_LE(run.counts[c + 1], 2 * run.counts[c]);
  }
}

TEST(GwSimulate, RejectsBadParams) {
  Rng rng(3);
  EXPECT_THROW(simulate_dissemination(GwParams{0, 1.0}, rng), InvalidArgument);
  EXPECT_THROW(simulate_dissemination(GwParams{8, 0.0}, rng), InvalidArgument);
  EXPECT_THROW(simulate_dissemination(GwParams{8, 1.5}, rng), InvalidArgument);
}

TEST(GwEstimate, Lemma2PredictsMeanCrossing) {
  // Lemma 2's object: the slot at which the unbounded process crosses 1+N.
  // E[FWL] = ceil(log2(1+N)/log2(mu)) within Monte-Carlo noise.
  for (double q : {1.0, 0.8, 0.5, 0.3}) {
    const GwParams params{4096, q};
    const GwStats stats = estimate_crossing_slots(params, 400, 12345);
    const auto predicted =
        static_cast<double>(expected_fwl(params.num_sensors, gw_mu(params)));
    EXPECT_NEAR(stats.mean_cover_slots, predicted, 0.10 * predicted + 1.0)
        << "q=" << q;
  }
}

TEST(GwEstimate, FiniteCoverageAddsSaturationTail) {
  // Full coverage of a finite network = supercritical crossing + a tail in
  // which the uncovered remainder decays by (1-q) per slot.
  for (double q : {0.8, 0.5}) {
    const GwParams params{4096, q};
    const GwStats stats = estimate_cover_slots(params, 400, 777);
    const auto crossing =
        static_cast<double>(expected_fwl(params.num_sensors, gw_mu(params)));
    const double tail = saturation_tail_slots(params);
    EXPECT_GE(stats.mean_cover_slots, crossing - 1.0) << "q=" << q;
    EXPECT_LE(stats.mean_cover_slots, crossing + tail + 3.0) << "q=" << q;
  }
  // With reliable links there is no tail at all.
  EXPECT_DOUBLE_EQ(saturation_tail_slots(GwParams{4096, 1.0}), 0.0);
}

TEST(GwEstimate, LossSlowsCoverage) {
  const GwStats fast = estimate_cover_slots(GwParams{2048, 1.0}, 200, 99);
  const GwStats slow = estimate_cover_slots(GwParams{2048, 0.3}, 200, 99);
  EXPECT_GT(slow.mean_cover_slots, fast.mean_cover_slots);
  EXPECT_LE(fast.min_cover_slots, fast.max_cover_slots);
}

TEST(GwEstimate, DeterministicForSeed) {
  const GwStats a = estimate_cover_slots(GwParams{512, 0.7}, 100, 42);
  const GwStats b = estimate_cover_slots(GwParams{512, 0.7}, 100, 42);
  EXPECT_DOUBLE_EQ(a.mean_cover_slots, b.mean_cover_slots);
  EXPECT_EQ(a.min_cover_slots, b.min_cover_slots);
  EXPECT_EQ(a.max_cover_slots, b.max_cover_slots);
}

TEST(GwNormalizedLimit, Lemma1MeanIsOne) {
  // X(c)/mu^c should have mean ~1 (Lemma 1, E[X] = 1).
  for (double q : {0.5, 0.8}) {
    const auto samples = sample_normalized_limit(q, 14, 4000, 777);
    const double mean =
        std::accumulate(samples.begin(), samples.end(), 0.0) /
        static_cast<double>(samples.size());
    EXPECT_NEAR(mean, 1.0, 0.05) << "q=" << q;
  }
}

TEST(GwNormalizedLimit, Lemma1VarianceMatches) {
  // Var[X] = sigma^2 / (mu^2 - mu) with offspring variance
  // sigma^2 = q(1-q) for the Bernoulli(+1) recruitment.
  const double q = 0.5;
  const double mu = 1.0 + q;
  const double sigma_sq = q * (1.0 - q);
  const double predicted_var = sigma_sq / (mu * mu - mu);
  const auto samples = sample_normalized_limit(q, 18, 8000, 4242);
  double mean = 0.0;
  for (double s : samples) mean += s;
  mean /= static_cast<double>(samples.size());
  double var = 0.0;
  for (double s : samples) var += (s - mean) * (s - mean);
  var /= static_cast<double>(samples.size());
  EXPECT_NEAR(var, predicted_var, 0.15 * predicted_var + 0.01);
}

TEST(GwNormalizedLimit, ConcentratesByChebyshev) {
  // The paper uses Chebyshev to argue X is rarely far above 1; check the
  // empirical tail at alpha = 3.
  const double q = 0.8;
  const double mu = 1.0 + q;
  const double sigma_sq = q * (1.0 - q);
  const double bound = sigma_sq / (4.0 * (mu * mu - mu));  // alpha = 3.
  const auto samples = sample_normalized_limit(q, 16, 8000, 31337);
  std::size_t above = 0;
  for (double s : samples) {
    if (s > 3.0) ++above;
  }
  EXPECT_LE(static_cast<double>(above) / static_cast<double>(samples.size()),
            bound + 0.01);
}

class GwQSweep : public ::testing::TestWithParam<double> {};

TEST_P(GwQSweep, CoverageAtLeastReliableLimit) {
  const double q = GetParam();
  const GwStats stats = estimate_cover_slots(GwParams{1024, q}, 50, 5);
  EXPECT_GE(stats.min_cover_slots, m_of(1024));
}

INSTANTIATE_TEST_SUITE_P(SuccessProbabilities, GwQSweep,
                         ::testing::Values(0.2, 0.4, 0.6, 0.8, 1.0));

}  // namespace
}  // namespace ldcf::theory
