#include "ldcf/theory/compact_flooding.hpp"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "ldcf/common/error.hpp"
#include "ldcf/theory/fdl.hpp"
#include "ldcf/theory/fwl.hpp"

namespace ldcf::theory {
namespace {

TEST(CompactFlooding, RejectsNonPowerOfTwoN) {
  EXPECT_THROW(run_compact_flooding(CompactRunConfig{3, 1, false}),
               InvalidArgument);
  EXPECT_THROW(run_compact_flooding(CompactRunConfig{0, 1, false}),
               InvalidArgument);
  EXPECT_THROW(run_compact_flooding(CompactRunConfig{4, 0, false}),
               InvalidArgument);
}

TEST(CompactFlooding, Fig3SinglePacket) {
  // Fig. 3 topology: N = 4, one packet covers everyone by compact slot 3.
  const auto result = run_compact_flooding(CompactRunConfig{4, 1, true});
  ASSERT_EQ(result.completion.size(), 1u);
  EXPECT_EQ(result.completion[0], 3u);
  EXPECT_EQ(result.total_slots, fdl_compact_full_duplex(4, 1));
}

TEST(CompactFlooding, Fig3TwoPackets) {
  // Fig. 3(b): both packets delivered everywhere by compact slot 4
  // (Lemma 3: M + m - 1 = 2 + 3 - 1).
  const auto result = run_compact_flooding(CompactRunConfig{4, 2, true});
  EXPECT_EQ(result.total_slots, 4u);
  EXPECT_EQ(result.completion[0], 3u);
  EXPECT_EQ(result.completion[1], 4u);
}

TEST(CompactFlooding, Lemma3AcrossSizes) {
  // FDL = M + m - 1 for every power-of-two network and packet count tried.
  for (std::uint64_t n : {1ULL, 2ULL, 4ULL, 8ULL, 16ULL, 32ULL, 64ULL,
                          128ULL, 256ULL}) {
    for (std::uint64_t big_m : {1ULL, 2ULL, 3ULL, 5ULL, 8ULL, 16ULL, 40ULL}) {
      const auto result =
          run_compact_flooding(CompactRunConfig{n, big_m, false});
      EXPECT_EQ(result.total_slots, fdl_compact_full_duplex(n, big_m))
          << "N=" << n << " M=" << big_m;
    }
  }
}

TEST(CompactFlooding, EveryPacketMeetsItsExpiredTime) {
  // The expired-time definition only works because Algorithm 1 delivers
  // packet p everywhere by compact slot K_p + m; verify that claim.
  for (std::uint64_t n : {4ULL, 16ULL, 64ULL, 256ULL}) {
    const std::uint64_t big_m = 3 * m_of(n);
    const auto result = run_compact_flooding(CompactRunConfig{n, big_m, false});
    for (PacketId p = 0; p < big_m; ++p) {
      EXPECT_LE(result.completion[p], expired_time(n, p))
          << "N=" << n << " p=" << p;
    }
  }
}

TEST(CompactFlooding, Table1WaitingsMatchObservedCompletions) {
  // Table I: packet p completes at compact slot K_p + W_p - (m - 1)... The
  // directly observable form is completion[p] = p + m (injection at p plus
  // m dissemination slots), which is exactly Lemma 3 applied per packet,
  // and completion deltas of 1 reflect full pipelining.
  const std::uint64_t n = 64;
  const std::uint64_t big_m = 20;
  const auto result = run_compact_flooding(CompactRunConfig{n, big_m, false});
  for (PacketId p = 0; p < big_m; ++p) {
    EXPECT_EQ(result.completion[p], p + m_of(n)) << "p=" << p;
  }
}

TEST(CompactFlooding, NoTransmissionOfExpiredPackets) {
  const std::uint64_t n = 16;
  const auto result = run_compact_flooding(CompactRunConfig{n, 10, true});
  for (const CompactEvent& ev : result.events) {
    EXPECT_LT(ev.slot, expired_time(n, ev.packet))
        << "expired packet " << ev.packet << " sent at slot " << ev.slot;
  }
}

TEST(CompactFlooding, UnicastOneTransmissionPerNodePerSlot) {
  const auto result = run_compact_flooding(CompactRunConfig{32, 12, true});
  std::set<std::pair<CompactSlot, NodeId>> senders;
  for (const CompactEvent& ev : result.events) {
    const bool inserted = senders.insert({ev.slot, ev.from}).second;
    EXPECT_TRUE(inserted) << "node " << ev.from << " sent twice in slot "
                          << ev.slot;
  }
}

TEST(CompactFlooding, TargetsFollowHypercubeRule) {
  const std::uint64_t n = 8;  // n = 3 dimensions.
  const auto result = run_compact_flooding(CompactRunConfig{n, 4, true});
  for (const CompactEvent& ev : result.events) {
    const std::uint64_t stride = 1ULL << (ev.slot % 3);
    NodeId expected = static_cast<NodeId>((stride + ev.from) % n);
    if (expected == 0) expected = static_cast<NodeId>(n);
    EXPECT_EQ(ev.to, expected);
  }
}

TEST(CompactFlooding, MatrixEvolutionEq2) {
  // Replaying S_p(c) through Eq. (2) reproduces the possession counts:
  // non-decreasing, ends at 1+N, grows by at most |X_p(c)| per slot.
  const CompactRunConfig config{16, 6, true};
  const auto result = run_compact_flooding(config);
  for (PacketId p = 0; p < config.num_packets; ++p) {
    const auto traj = possession_trajectory(result, config, p);
    ASSERT_FALSE(traj.empty());
    EXPECT_EQ(traj.back(), config.num_sensors + 1);
    for (std::size_t c = 0; c + 1 < traj.size(); ++c) {
      EXPECT_LE(traj[c], traj[c + 1]);
      EXPECT_LE(traj[c + 1], 2 * std::max<std::uint64_t>(traj[c], 1));
    }
  }
}

TEST(CompactFlooding, CriticalPathWaitsRespectTable1) {
  // Theorem 1 / Table I: the last copy of packet p experiences at most
  // W_p = m + min(p, m-1) waitings once type-2 (send+receive) slots on its
  // path are charged twice.
  for (std::uint64_t n : {4ULL, 16ULL, 64ULL, 256ULL}) {
    const std::uint64_t m = m_of(n);
    for (std::uint64_t big_m : {1ULL, 2ULL, 5ULL, 20ULL, 50ULL}) {
      const auto result =
          run_compact_flooding(CompactRunConfig{n, big_m, false});
      ASSERT_EQ(result.paths.size(), big_m);
      for (PacketId p = 0; p < big_m; ++p) {
        const auto& path = result.paths[p];
        EXPECT_GE(path.hops, 1u);
        EXPECT_LE(path.hops, m);
        EXPECT_LE(path.doubled_hops, path.hops);
        EXPECT_LE(path.waits, table1_waiting(n, big_m, p))
            << "N=" << n << " M=" << big_m << " p=" << p;
      }
    }
  }
}

TEST(CompactFlooding, LastPacketWaitsPlusQueueingMatchTheorem1Fwl) {
  // FWL = K_{M-1} + W_{M-1} with K_p = p prior injections; the measured
  // waits of the last packet must keep FWL within the Theorem 1 budget.
  for (std::uint64_t n : {4ULL, 16ULL, 64ULL, 256ULL}) {
    for (std::uint64_t big_m : {1ULL, 2ULL, 5ULL, 20ULL, 50ULL}) {
      const auto result =
          run_compact_flooding(CompactRunConfig{n, big_m, false});
      const std::uint64_t observed_fwl =
          (big_m - 1) + result.paths.back().waits;
      EXPECT_LE(observed_fwl, multi_packet_fwl(n, big_m))
          << "N=" << n << " M=" << big_m;
    }
  }
}

TEST(CompactFlooding, GlobalWeightedSlotsAreAnUpperEnvelope) {
  // The naive global serialization (every type-2 slot doubled) is always at
  // least the makespan and at most twice it.
  for (std::uint64_t n : {4ULL, 64ULL}) {
    for (std::uint64_t big_m : {1ULL, 10ULL, 30ULL}) {
      const auto result =
          run_compact_flooding(CompactRunConfig{n, big_m, false});
      EXPECT_GE(result.weighted_slots, result.total_slots);
      EXPECT_LE(result.weighted_slots, 2 * result.total_slots);
      EXPECT_EQ(result.weighted_slots,
                result.total_slots + result.type2_slots);
    }
  }
}

TEST(CompactFlooding, SingleSensorDegenerateCase) {
  // N = 1: source hands each packet straight to the only sensor.
  const auto result = run_compact_flooding(CompactRunConfig{1, 3, true});
  EXPECT_EQ(result.total_slots, fdl_compact_full_duplex(1, 3));
  for (const CompactEvent& ev : result.events) {
    EXPECT_EQ(ev.from, 0u);
    EXPECT_EQ(ev.to, 1u);
  }
}

TEST(SelectTransmission, PrefersMostRecentNonExpired) {
  const std::uint64_t n = 16;  // m = 5.
  std::vector<HeldPacket> held{
      {0, 0},  // old packet, received long ago.
      {3, 4},  // newer packet, received recently.
  };
  EXPECT_EQ(select_transmission(held, 4, n), PacketId{3});
  // At slot 9, packet 3 expires (3 + 5 = 8 <= 9) and packet 0 expired long
  // ago: nothing to send.
  EXPECT_EQ(select_transmission(held, 9, n), kNoPacket);
}

TEST(SelectTransmission, TieBreaksTowardNewerPacket) {
  const std::uint64_t n = 64;
  std::vector<HeldPacket> held{{2, 3}, {5, 3}};
  EXPECT_EQ(select_transmission(held, 4, n), PacketId{5});
}

TEST(SelectTransmission, EmptyAndNilHoldings) {
  EXPECT_EQ(select_transmission({}, 0, 16), kNoPacket);
  EXPECT_EQ(select_transmission({{kNoPacket, 0}}, 0, 16), kNoPacket);
}

class CompactSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint64_t>> {
};

TEST_P(CompactSweep, PipelinesPerfectlyUnderFullDuplex) {
  const auto [n, big_m] = GetParam();
  const auto result = run_compact_flooding(CompactRunConfig{n, big_m, false});
  // Each consecutive packet completes exactly one slot after its predecessor
  // (full pipelining, the content of Lemma 3).
  for (PacketId p = 1; p < big_m; ++p) {
    EXPECT_EQ(result.completion[p], result.completion[p - 1] + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    GridOfRuns, CompactSweep,
    ::testing::Combine(::testing::Values(2ULL, 8ULL, 32ULL, 128ULL),
                       ::testing::Values(2ULL, 7ULL, 19ULL)));

}  // namespace
}  // namespace ldcf::theory
