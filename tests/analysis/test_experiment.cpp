#include "ldcf/analysis/experiment.hpp"

#include <gtest/gtest.h>

#include "ldcf/common/error.hpp"
#include "ldcf/topology/generators.hpp"

namespace ldcf::analysis {
namespace {

topology::Topology small_trace() {
  topology::ClusterConfig config;
  config.base.num_sensors = 40;
  config.base.area_side_m = 200.0;
  config.base.radio.path_loss_exponent = 3.3;
  config.base.seed = 9;
  config.num_clusters = 4;
  return topology::make_clustered(config);
}

ExperimentConfig quick() {
  ExperimentConfig config;
  config.base.num_packets = 5;
  config.base.seed = 3;
  config.base.max_slots = 2'000'000;
  return config;
}

TEST(Experiment, RunPointProducesSaneNumbers) {
  const auto topo = small_trace();
  const auto point = run_point(topo, "opt", DutyCycle{10}, quick());
  EXPECT_EQ(point.protocol, "opt");
  EXPECT_DOUBLE_EQ(point.duty_ratio, 0.1);
  EXPECT_TRUE(point.all_covered);
  EXPECT_GT(point.mean_delay, 0.0);
  EXPECT_GT(point.attempts, 0.0);
  EXPECT_GT(point.energy_total, 0.0);
  EXPECT_GT(point.lifetime_slots, 0.0);
  EXPECT_NEAR(point.mean_delay,
              point.mean_queueing_delay + point.mean_transmission_delay,
              1e-6);
}

TEST(Experiment, RepetitionsAverage) {
  const auto topo = small_trace();
  ExperimentConfig config = quick();
  config.repetitions = 3;
  const auto averaged = run_point(topo, "opt", DutyCycle{10}, config);
  EXPECT_TRUE(averaged.all_covered);
  EXPECT_GT(averaged.mean_delay, 0.0);
  config.repetitions = 0;
  EXPECT_THROW((void)run_point(topo, "opt", DutyCycle{10}, config),
               InvalidArgument);
}

TEST(Experiment, DutySweepCoversGrid) {
  const auto topo = small_trace();
  const auto points =
      run_duty_sweep(topo, {"opt", "dbao"}, {0.2, 0.1}, quick());
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].protocol, "opt");
  EXPECT_DOUBLE_EQ(points[0].duty_ratio, 0.2);
  EXPECT_EQ(points[3].protocol, "dbao");
  EXPECT_DOUBLE_EQ(points[3].duty_ratio, 0.1);
  // Lower duty -> more delay for the same protocol.
  EXPECT_LT(points[0].mean_delay, points[1].mean_delay);
}

TEST(EffectiveK, ReductionsAreOrderedByJensen) {
  const auto topo = small_trace();
  const double optimistic = effective_k(topo, KEstimate::kInverseMeanPrr);
  const double pessimistic = effective_k(topo, KEstimate::kHarmonicMean);
  const double tree = effective_k(topo, KEstimate::kTreeWeighted);
  // Jensen: mean(1/q) >= 1/mean(q); all are >= 1 transmission.
  EXPECT_GE(pessimistic, optimistic);
  EXPECT_GE(optimistic, 1.0);
  // The ETX tree picks good links, so it beats the all-links harmonic mean.
  EXPECT_LT(tree, pessimistic);
  EXPECT_GE(tree, 1.0);
}

TEST(EffectiveK, HomogeneousNetworkCollapsesAllModes) {
  const auto topo = topology::make_complete(10, 0.5);
  for (const auto mode :
       {KEstimate::kInverseMeanPrr, KEstimate::kHarmonicMean,
        KEstimate::kTreeWeighted}) {
    EXPECT_NEAR(effective_k(topo, mode), 2.0, 1e-9);
  }
}

TEST(EffectiveK, RejectsLinklessTopology) {
  const topology::Topology lonely{std::vector<topology::Point2D>(3)};
  EXPECT_THROW((void)effective_k(lonely, KEstimate::kInverseMeanPrr),
               InvalidArgument);
}

TEST(Experiment, PacketSeriesHasOneEntryPerPacket) {
  const auto topo = small_trace();
  sim::SimConfig config = quick().base;
  config.num_packets = 8;
  const auto series = run_packet_series(topo, "dbao", config);
  EXPECT_EQ(series.protocol, "dbao");
  ASSERT_EQ(series.total_delay.size(), 8u);
  for (std::size_t p = 0; p < 8; ++p) {
    EXPECT_EQ(series.total_delay[p],
              series.queueing_delay[p] + series.transmission_delay[p]);
  }
}

}  // namespace
}  // namespace ldcf::analysis
