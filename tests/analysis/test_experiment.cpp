#include "ldcf/analysis/experiment.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "ldcf/common/error.hpp"
#include "ldcf/protocols/registry.hpp"
#include "ldcf/topology/generators.hpp"

namespace ldcf::analysis {
namespace {

topology::Topology small_trace() {
  topology::ClusterConfig config;
  config.base.num_sensors = 40;
  config.base.area_side_m = 200.0;
  config.base.radio.path_loss_exponent = 3.3;
  config.base.seed = 9;
  config.num_clusters = 4;
  return topology::make_clustered(config);
}

ExperimentConfig quick() {
  ExperimentConfig config;
  config.base.num_packets = 5;
  config.base.seed = 3;
  config.base.max_slots = 2'000'000;
  return config;
}

TEST(Experiment, RunPointProducesSaneNumbers) {
  const auto topo = small_trace();
  const auto point = run_point(topo, "opt", DutyCycle{10}, quick());
  EXPECT_EQ(point.protocol, "opt");
  EXPECT_DOUBLE_EQ(point.duty_ratio, 0.1);
  EXPECT_TRUE(point.all_covered);
  EXPECT_GT(point.mean_delay, 0.0);
  EXPECT_GT(point.attempts, 0.0);
  EXPECT_GT(point.energy_total, 0.0);
  EXPECT_GT(point.lifetime_slots, 0.0);
  EXPECT_NEAR(point.mean_delay,
              point.mean_queueing_delay + point.mean_transmission_delay,
              1e-6);
}

TEST(Experiment, RepetitionsAverage) {
  const auto topo = small_trace();
  ExperimentConfig config = quick();
  config.repetitions = 3;
  const auto averaged = run_point(topo, "opt", DutyCycle{10}, config);
  EXPECT_TRUE(averaged.all_covered);
  EXPECT_GT(averaged.mean_delay, 0.0);
  config.repetitions = 0;
  EXPECT_THROW((void)run_point(topo, "opt", DutyCycle{10}, config),
               InvalidArgument);
}

TEST(Experiment, DutySweepCoversGrid) {
  const auto topo = small_trace();
  const auto points =
      run_duty_sweep(topo, {"opt", "dbao"}, {0.2, 0.1}, quick());
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].protocol, "opt");
  EXPECT_DOUBLE_EQ(points[0].duty_ratio, 0.2);
  EXPECT_EQ(points[3].protocol, "dbao");
  EXPECT_DOUBLE_EQ(points[3].duty_ratio, 0.1);
  // Lower duty -> more delay for the same protocol.
  EXPECT_LT(points[0].mean_delay, points[1].mean_delay);
}

// The one-pass sqrt(E[x^2] - mean^2) formula this replaced loses all
// significant digits when the spread is tiny relative to the mean: with
// per-trial means near 1e9 the squares sit at 1e18 where a double's ulp is
// ~128, so the subtraction returns quantization noise, not 2/3.
TEST(ReduceTrials, StddevSurvivesNearEqualLargeDelays) {
  std::vector<TrialStats> trials(3);
  trials[0].mean_delay = 1e9;
  trials[1].mean_delay = 1e9 + 1.0;
  trials[2].mean_delay = 1e9 + 2.0;
  const ProtocolPoint point = reduce_trials("opt", DutyCycle{10}, trials);
  EXPECT_NEAR(point.mean_delay, 1e9 + 1.0, 1e-3);
  EXPECT_NEAR(point.delay_stddev, std::sqrt(2.0 / 3.0), 1e-6);
}

TEST(ReduceTrials, StddevMatchesPopulationFormula) {
  std::vector<TrialStats> trials(3);
  trials[0].mean_delay = 10.0;
  trials[1].mean_delay = 20.0;
  trials[2].mean_delay = 30.0;
  const ProtocolPoint point = reduce_trials("opt", DutyCycle{10}, trials);
  EXPECT_DOUBLE_EQ(point.mean_delay, 20.0);
  EXPECT_NEAR(point.delay_stddev, std::sqrt(200.0 / 3.0), 1e-12);

  const std::vector<TrialStats> identical(4, trials[0]);
  EXPECT_EQ(reduce_trials("opt", DutyCycle{10}, identical).delay_stddev, 0.0);

  EXPECT_THROW((void)reduce_trials("opt", DutyCycle{10}, {}),
               InvalidArgument);
}

// The parallel executor's whole contract: any thread count produces
// field-for-field bit-identical sweep results, for every registered
// protocol, on more than one topology.
TEST(Experiment, SweepIsBitIdenticalAcrossThreadCounts) {
  const std::vector<topology::Topology> topos = {
      small_trace(), topology::make_complete(12, 0.9)};
  const std::vector<std::string> protocols = protocols::protocol_names();
  const std::vector<double> duties{0.2, 0.1};
  for (const auto& topo : topos) {
    ExperimentConfig serial = quick();
    serial.base.num_packets = 3;
    serial.repetitions = 3;
    serial.threads = 1;
    ExperimentConfig parallel = serial;
    parallel.threads = 4;
    const auto a = run_duty_sweep(topo, protocols, duties, serial);
    const auto b = run_duty_sweep(topo, protocols, duties, parallel);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a.size(), protocols.size() * duties.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      SCOPED_TRACE(a[i].protocol + " @ duty " +
                   std::to_string(a[i].duty_ratio));
      EXPECT_EQ(a[i].protocol, b[i].protocol);
      EXPECT_EQ(a[i].duty_ratio, b[i].duty_ratio);
      EXPECT_EQ(a[i].mean_delay, b[i].mean_delay);
      EXPECT_EQ(a[i].delay_stddev, b[i].delay_stddev);
      EXPECT_EQ(a[i].mean_queueing_delay, b[i].mean_queueing_delay);
      EXPECT_EQ(a[i].mean_transmission_delay, b[i].mean_transmission_delay);
      EXPECT_EQ(a[i].failures, b[i].failures);
      EXPECT_EQ(a[i].attempts, b[i].attempts);
      EXPECT_EQ(a[i].duplicates, b[i].duplicates);
      EXPECT_EQ(a[i].energy_total, b[i].energy_total);
      EXPECT_EQ(a[i].lifetime_slots, b[i].lifetime_slots);
      EXPECT_EQ(a[i].all_covered, b[i].all_covered);
    }
    // A parallel run_point reproduces its sweep cell bit-for-bit too.
    const auto point = run_point(topo, protocols[0],
                                 DutyCycle::from_ratio(duties[0]), parallel);
    EXPECT_EQ(point.mean_delay, a[0].mean_delay);
    EXPECT_EQ(point.delay_stddev, a[0].delay_stddev);
    EXPECT_EQ(point.energy_total, a[0].energy_total);
  }
}

// The trace-path suffix rule (satellite of the telemetry PR): a single
// trial writes exactly the requested path; multi-trial runs splice the
// per-trial suffix in before the extension.
TEST(TrialTracePath, SingleTrialWritesExactlyTheGivenPath) {
  EXPECT_EQ(trial_trace_path("out/run.jsonl", "dbao", DutyCycle{20}, 0, 1),
            "out/run.jsonl");
  EXPECT_EQ(trial_trace_path("run.jsonl", "opt", DutyCycle{10}, 5, 1),
            "run.jsonl");
  EXPECT_EQ(trial_trace_path("", "opt", DutyCycle{10}, 0, 1), "");
}

TEST(TrialTracePath, MultiTrialRunsGetPerTrialSuffixBeforeExtension) {
  EXPECT_EQ(trial_trace_path("run.jsonl", "dbao", DutyCycle{20}, 2, 6),
            "run-dbao-T20-r2.jsonl");
  EXPECT_EQ(trial_trace_path("a/b/run.jsonl", "opt", DutyCycle{10}, 0, 2),
            "a/b/run-opt-T10-r0.jsonl");
  // No extension: the suffix simply appends.
  EXPECT_EQ(trial_trace_path("trace", "of", DutyCycle{5}, 1, 3),
            "trace-of-T5-r1");
  // A dot in a directory component is not an extension.
  EXPECT_EQ(trial_trace_path("v1.2/trace", "of", DutyCycle{5}, 1, 3),
            "v1.2/trace-of-T5-r1");
  EXPECT_EQ(trial_trace_path("", "of", DutyCycle{5}, 1, 3), "");
}

// reduce_trials merges registries in repetition order, but the histogram
// algebra makes the resulting bins independent of that order.
TEST(ReduceTrials, HistogramMergeIsIndependentOfReductionOrder) {
  std::vector<TrialStats> trials(3);
  trials[0].metrics.histogram("delay.total").record(1.0);
  trials[0].metrics.histogram("delay.total").record(2.0);
  trials[1].metrics.histogram("delay.total").record(200.0);  // coarsens.
  trials[2].metrics.histogram("delay.total").record(3.0, 4);
  trials[0].metrics.counter("tx.attempts").inc(10);
  trials[1].metrics.counter("tx.attempts").inc(20);
  trials[2].metrics.counter("tx.attempts").inc(30);
  trials[1].truncated = true;

  const ProtocolPoint forward = reduce_trials("opt", DutyCycle{10}, trials);
  std::vector<TrialStats> reversed = {trials[2], trials[1], trials[0]};
  const ProtocolPoint backward =
      reduce_trials("opt", DutyCycle{10}, reversed);

  EXPECT_EQ(forward.truncated_trials, 1u);
  EXPECT_TRUE(forward.truncated);
  EXPECT_EQ(backward.truncated_trials, 1u);
  EXPECT_EQ(forward.metrics.counters().at("tx.attempts").value(), 60u);
  EXPECT_EQ(backward.metrics.counters().at("tx.attempts").value(), 60u);

  const auto& a = forward.metrics.histograms().at("delay.total");
  const auto& b = backward.metrics.histograms().at("delay.total");
  ASSERT_EQ(a.count(), 7u);
  ASSERT_EQ(a.count(), b.count());
  ASSERT_DOUBLE_EQ(a.bin_width(), b.bin_width());
  for (std::size_t i = 0; i < a.num_bins(); ++i) {
    EXPECT_EQ(a.bin_count(i), b.bin_count(i)) << "bin " << i;
  }
  EXPECT_DOUBLE_EQ(a.sum(), b.sum());
}

// Acceptance criterion of the telemetry PR: merged histograms are
// bit-identical for any thread count, not just the scalar aggregates.
TEST(Experiment, MergedTelemetryIsBitIdenticalAcrossThreadCounts) {
  const auto topo = small_trace();
  ExperimentConfig serial = quick();
  serial.base.num_packets = 4;
  serial.repetitions = 4;
  serial.threads = 1;
  serial.collect_stats = true;
  ExperimentConfig parallel = serial;
  parallel.threads = 4;

  const auto a = run_point(topo, "dbao", DutyCycle{10}, serial);
  const auto b = run_point(topo, "dbao", DutyCycle{10}, parallel);

  ASSERT_FALSE(a.metrics.counters().empty());
  ASSERT_EQ(a.metrics.counters().size(), b.metrics.counters().size());
  for (const auto& [name, counter] : a.metrics.counters()) {
    SCOPED_TRACE(name);
    EXPECT_EQ(counter.value(), b.metrics.counters().at(name).value());
  }
  ASSERT_FALSE(a.metrics.histograms().empty());
  ASSERT_EQ(a.metrics.histograms().size(), b.metrics.histograms().size());
  for (const auto& [name, hist] : a.metrics.histograms()) {
    SCOPED_TRACE(name);
    const auto& other = b.metrics.histograms().at(name);
    ASSERT_EQ(hist.num_bins(), other.num_bins());
    EXPECT_DOUBLE_EQ(hist.bin_width(), other.bin_width());
    EXPECT_EQ(hist.count(), other.count());
    EXPECT_DOUBLE_EQ(hist.sum(), other.sum());
    EXPECT_DOUBLE_EQ(hist.min(), other.min());
    EXPECT_DOUBLE_EQ(hist.max(), other.max());
    for (std::size_t i = 0; i < hist.num_bins(); ++i) {
      EXPECT_EQ(hist.bin_count(i), other.bin_count(i)) << "bin " << i;
    }
  }
  EXPECT_EQ(a.metrics.counters().at("runs.total").value(), 4u);
  EXPECT_EQ(a.metrics.histograms().at("energy.per_node").count(),
            4u * topo.num_nodes());
}

TEST(Experiment, CollectStatsOffLeavesRegistryEmpty) {
  const auto topo = small_trace();
  const auto point = run_point(topo, "opt", DutyCycle{10}, quick());
  EXPECT_TRUE(point.metrics.counters().empty());
  EXPECT_TRUE(point.metrics.histograms().empty());
}

TEST(Experiment, ReportPathWritesASweepReport) {
  const auto topo = small_trace();
  ExperimentConfig config = quick();
  config.repetitions = 2;
  const auto path = std::filesystem::temp_directory_path() /
                    "ldcf_test_sweep_report.json";
  config.report_path = path.string();
  const auto point = run_point(topo, "opt", DutyCycle{10}, config);
  // report_path implies stats collection.
  EXPECT_FALSE(point.metrics.counters().empty());

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  EXPECT_NE(text.find("\"schema\":\"ldcf.sweep_report.v1\""),
            std::string::npos);
  EXPECT_NE(text.find("\"tool\":\"run_point\""), std::string::npos);
  EXPECT_NE(text.find("\"delay.total\""), std::string::npos);
  EXPECT_NE(text.find("\"provenance\""), std::string::npos);
  std::filesystem::remove(path);
}

TEST(Experiment, ProgressCallbackSeesEveryCompletion) {
  const auto topo = small_trace();
  ExperimentConfig config = quick();
  config.base.num_packets = 2;
  config.repetitions = 3;
  config.threads = 2;
  std::vector<std::size_t> seen;
  config.progress = [&seen](const Progress& p) {
    EXPECT_EQ(p.total, 3u);
    EXPECT_GE(p.elapsed_seconds, 0.0);
    EXPECT_GE(p.tasks_per_sec, 0.0);
    if (p.completed == p.total) {
      // Nothing left: the executor reports no ETA for a finished batch.
      EXPECT_EQ(p.eta_seconds, 0.0);
    }
    seen.push_back(p.completed);
  };
  (void)run_point(topo, "opt", DutyCycle{10}, config);
  EXPECT_EQ(seen, (std::vector<std::size_t>{1, 2, 3}));
}

TEST(EffectiveK, ReductionsAreOrderedByJensen) {
  const auto topo = small_trace();
  const double optimistic = effective_k(topo, KEstimate::kInverseMeanPrr);
  const double pessimistic = effective_k(topo, KEstimate::kHarmonicMean);
  const double tree = effective_k(topo, KEstimate::kTreeWeighted);
  // Jensen: mean(1/q) >= 1/mean(q); all are >= 1 transmission.
  EXPECT_GE(pessimistic, optimistic);
  EXPECT_GE(optimistic, 1.0);
  // The ETX tree picks good links, so it beats the all-links harmonic mean.
  EXPECT_LT(tree, pessimistic);
  EXPECT_GE(tree, 1.0);
}

TEST(EffectiveK, HomogeneousNetworkCollapsesAllModes) {
  const auto topo = topology::make_complete(10, 0.5);
  for (const auto mode :
       {KEstimate::kInverseMeanPrr, KEstimate::kHarmonicMean,
        KEstimate::kTreeWeighted}) {
    EXPECT_NEAR(effective_k(topo, mode), 2.0, 1e-9);
  }
}

TEST(EffectiveK, RejectsLinklessTopology) {
  const topology::Topology lonely{std::vector<topology::Point2D>(3)};
  EXPECT_THROW((void)effective_k(lonely, KEstimate::kInverseMeanPrr),
               InvalidArgument);
}

TEST(EffectiveK, SingleLinkTopologyCollapsesAllModes) {
  topology::Topology topo{std::vector<topology::Point2D>(2)};
  topo.add_link(0, 1, 0.5);
  for (const auto mode :
       {KEstimate::kInverseMeanPrr, KEstimate::kHarmonicMean,
        KEstimate::kTreeWeighted}) {
    EXPECT_NEAR(effective_k(topo, mode), 2.0, 1e-12);
  }
}

TEST(EffectiveK, PerfectLinksNeedExactlyOneTransmission) {
  const auto topo = topology::make_complete(8, 1.0);
  for (const auto mode :
       {KEstimate::kInverseMeanPrr, KEstimate::kHarmonicMean,
        KEstimate::kTreeWeighted}) {
    EXPECT_DOUBLE_EQ(effective_k(topo, mode), 1.0);
  }
}

TEST(EffectiveK, TreeWeightedThrowsWhenSourceReachesNothing) {
  // Links exist (so the linkless check passes) but none leave the source:
  // the ETX tree from node 0 is empty and the reduction must refuse.
  topology::Topology topo{std::vector<topology::Point2D>(3)};
  topo.add_link(1, 2, 0.8);
  EXPECT_THROW((void)effective_k(topo, KEstimate::kTreeWeighted),
               InvalidArgument);
  // The link-global reductions still work on the same topology.
  EXPECT_NEAR(effective_k(topo, KEstimate::kInverseMeanPrr), 1.25, 1e-12);
  EXPECT_NEAR(effective_k(topo, KEstimate::kHarmonicMean), 1.25, 1e-12);
}

TEST(Experiment, PacketSeriesHasOneEntryPerPacket) {
  const auto topo = small_trace();
  sim::SimConfig config = quick().base;
  config.num_packets = 8;
  const auto series = run_packet_series(topo, "dbao", config);
  EXPECT_EQ(series.protocol, "dbao");
  ASSERT_EQ(series.total_delay.size(), 8u);
  for (std::size_t p = 0; p < 8; ++p) {
    EXPECT_EQ(series.total_delay[p],
              series.queueing_delay[p] + series.transmission_delay[p]);
  }
}

// Fig. 9's decomposition must hold per packet for every protocol family:
// the three series stay aligned and total = queueing + transmission.
TEST(Experiment, PacketSeriesDelayDecomposesForEveryProtocol) {
  const auto topo = small_trace();
  sim::SimConfig config = quick().base;
  config.num_packets = 6;
  for (const auto& name : protocols::protocol_names()) {
    const auto series = run_packet_series(topo, name, config);
    SCOPED_TRACE(name);
    ASSERT_EQ(series.total_delay.size(), 6u);
    ASSERT_EQ(series.queueing_delay.size(), 6u);
    ASSERT_EQ(series.transmission_delay.size(), 6u);
    for (std::size_t p = 0; p < series.total_delay.size(); ++p) {
      EXPECT_EQ(series.total_delay[p],
                series.queueing_delay[p] + series.transmission_delay[p]);
    }
  }
}

TEST(Experiment, ConformanceOffLeavesTrialsUnchecked) {
  const auto topo = small_trace();
  const TrialStats stats = run_trial(topo, "opt", quick().base);
  EXPECT_FALSE(stats.conformance_checked);
  EXPECT_EQ(stats.conformance_violations, 0u);
  const auto point = run_point(topo, "opt", DutyCycle{10}, quick());
  EXPECT_EQ(point.violating_trials, 0u);
}

TEST(Experiment, ConformanceCountsViolatingTrials) {
  // The lossy default topology blows past the Theorem 2 envelope (that is
  // the check's purpose), so every trial should register as violating —
  // and the count must be bit-identical across thread counts.
  const auto topo = small_trace();
  ExperimentConfig config = quick();
  config.base.duty = DutyCycle{10};
  config.repetitions = 3;
  config.check_conformance = true;

  config.threads = 1;
  const auto serial = run_point(topo, "of", DutyCycle{10}, config);
  config.threads = 3;
  const auto threaded = run_point(topo, "of", DutyCycle{10}, config);

  EXPECT_EQ(serial.violating_trials, threaded.violating_trials);
  EXPECT_GT(serial.violating_trials, 0u);
  EXPECT_LE(serial.violating_trials, config.repetitions);
  // The flight recorder must not perturb the run it watches.
  EXPECT_DOUBLE_EQ(serial.mean_delay, threaded.mean_delay);
  EXPECT_DOUBLE_EQ(serial.attempts, threaded.attempts);
}

TEST(Experiment, ConformanceReachesTheSweepReport) {
  const auto topo = small_trace();
  ExperimentConfig config = quick();
  config.repetitions = 2;
  config.check_conformance = true;
  const std::string path =
      (std::filesystem::temp_directory_path() / "ldcf_conf_report.json")
          .string();
  config.report_path = path;
  (void)run_point(topo, "opt", DutyCycle{10}, config);
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("\"violating_trials\""), std::string::npos);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace ldcf::analysis
