#include "ldcf/analysis/parallel.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace ldcf::analysis {
namespace {

TEST(ResolveThreads, ZeroMeansOnePerHardwareThread) {
  EXPECT_GE(resolve_threads(0), 1u);
  EXPECT_EQ(resolve_threads(1), 1u);
  EXPECT_EQ(resolve_threads(7), 7u);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  for (const std::uint32_t threads : {0u, 1u, 2u, 4u, 9u}) {
    std::vector<int> visits(101, 0);
    parallel_for_indexed(visits.size(), threads,
                         [&](std::size_t i) { ++visits[i]; });
    for (const int v : visits) EXPECT_EQ(v, 1);
  }
}

TEST(ParallelFor, HandlesEmptyAndSingletonRanges) {
  bool ran = false;
  parallel_for_indexed(0, 4, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
  std::size_t seen = 99;
  parallel_for_indexed(1, 4, [&](std::size_t i) { seen = i; });
  EXPECT_EQ(seen, 0u);
}

TEST(ParallelFor, MoreWorkersThanTasks) {
  std::vector<int> visits(3, 0);
  parallel_for_indexed(visits.size(), 16,
                       [&](std::size_t i) { ++visits[i]; });
  EXPECT_EQ(visits, (std::vector<int>{1, 1, 1}));
}

TEST(ParallelFor, SerialFallbackRunsInlineInIndexOrder) {
  const std::thread::id main_id = std::this_thread::get_id();
  std::vector<std::size_t> order;
  parallel_for_indexed(5, 1, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), main_id);
    order.push_back(i);
  });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, RethrowsTheLowestFailingIndex) {
  // Serial and parallel runs must surface the same exception: the one a
  // left-to-right serial execution hits first.
  for (const std::uint32_t threads : {1u, 4u}) {
    try {
      parallel_for_indexed(64, threads, [](std::size_t i) {
        if (i % 2 == 1) {
          throw std::runtime_error("task " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception at threads=" << threads;
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "task 1");
    }
  }
}

}  // namespace
}  // namespace ldcf::analysis
