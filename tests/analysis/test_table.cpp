#include "ldcf/analysis/table.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "ldcf/common/error.hpp"

namespace ldcf::analysis {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"a", "longheader"});
  t.add_row({"1", "2"});
  t.add_row({"333333", "4"});
  std::ostringstream out;
  t.print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("longheader"), std::string::npos);
  EXPECT_NE(s.find("333333"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream out;
  t.print_csv(out);
  EXPECT_EQ(out.str(), "x,y\n1,2\n");
}

TEST(Table, RowWidthValidated) {
  Table t({"x", "y"});
  EXPECT_THROW(t.add_row({"1"}), InvalidArgument);
  EXPECT_THROW(Table({}), InvalidArgument);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.0, 0), "3");
  EXPECT_EQ(Table::num(std::uint64_t{42}), "42");
}

TEST(Table, RowCount) {
  Table t({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"}).add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

}  // namespace
}  // namespace ldcf::analysis
