// Cooperative cancellation (analysis/cancel.hpp + parallel_for_indexed):
// the flag is polled before each index claim, in-flight tasks finish, and
// CancelledError surfaces only when indices were actually abandoned.
#include "ldcf/analysis/cancel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <stdexcept>
#include <thread>
#include <vector>

#include "ldcf/analysis/parallel.hpp"

namespace {

using ldcf::analysis::CancelledError;
using ldcf::analysis::cancel_requested;
using ldcf::analysis::parallel_for_indexed;
using ldcf::analysis::request_cancel;
using ldcf::analysis::reset_cancel;

class CancelTest : public ::testing::Test {
 protected:
  // The flag is process-wide; never leak it into the next test.
  void SetUp() override { reset_cancel(); }
  void TearDown() override { reset_cancel(); }
};

TEST_F(CancelTest, FlagRoundTrips) {
  EXPECT_FALSE(cancel_requested());
  request_cancel();
  EXPECT_TRUE(cancel_requested());
  reset_cancel();
  EXPECT_FALSE(cancel_requested());
}

TEST_F(CancelTest, UncancelledRunCompletesEverything) {
  std::atomic<std::size_t> ran{0};
  parallel_for_indexed(64, 4, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 64u);
}

TEST_F(CancelTest, SerialRunStopsAtTheFlag) {
  std::vector<std::size_t> ran;
  EXPECT_THROW(parallel_for_indexed(10, 1,
                                    [&](std::size_t i) {
                                      ran.push_back(i);
                                      if (i == 3) request_cancel();
                                    }),
               CancelledError);
  // Indices 0..3 ran; the in-flight task finished; 4..9 never started.
  EXPECT_EQ(ran.size(), 4u);
  EXPECT_EQ(ran.back(), 3u);
}

TEST_F(CancelTest, ParallelRunAbandonsUnclaimedIndices) {
  // Tasks are slowed just enough that the flag (raised by index 0, the
  // first claim) is up long before 4 workers could drain 256 of them.
  std::atomic<std::size_t> ran{0};
  EXPECT_THROW(parallel_for_indexed(256, 4,
                                    [&](std::size_t i) {
                                      if (i == 0) request_cancel();
                                      std::this_thread::sleep_for(
                                          std::chrono::milliseconds(1));
                                      ++ran;
                                    }),
               CancelledError);
  // In-flight tasks finish (at least the triggering one), but the flag is
  // polled before each claim, so the full range is never exhausted.
  EXPECT_GE(ran.load(), 1u);
  EXPECT_LT(ran.load(), 256u);
}

TEST_F(CancelTest, CancelRacingCompletionIsNotAnError) {
  // The flag going up after every index was claimed must not fail a run
  // that actually finished all its work.
  std::atomic<std::size_t> ran{0};
  parallel_for_indexed(8, 2, [&](std::size_t i) {
    ++ran;
    if (i == 7) request_cancel();  // the last-claimed index.
  });
  // Depending on claim order index 7 may not be last to *finish*; either
  // way all 8 ran, so no CancelledError escaped above.
  EXPECT_EQ(ran.load(), 8u);
}

TEST_F(CancelTest, TaskErrorsWinOverCancellation) {
  EXPECT_THROW(parallel_for_indexed(4, 1,
                                    [&](std::size_t i) {
                                      if (i == 1) {
                                        request_cancel();
                                        throw std::runtime_error("task died");
                                      }
                                    }),
               std::runtime_error);
}

TEST_F(CancelTest, PreRaisedFlagCancelsImmediately) {
  request_cancel();
  std::atomic<std::size_t> ran{0};
  EXPECT_THROW(parallel_for_indexed(16, 4, [&](std::size_t) { ++ran; }),
               CancelledError);
  EXPECT_EQ(ran.load(), 0u);
}

}  // namespace
