// FloodServer end-to-end: the NDJSON protocol, admission control,
// malformed-frame resilience, cooperative shutdown, and the headline
// determinism contract — a cache-hit result is byte-identical to a cold
// one, and both match what run_point produces directly.
#include "ldcf/serve/server.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ldcf/analysis/experiment.hpp"
#include "ldcf/analysis/report.hpp"
#include "ldcf/obs/json_reader.hpp"
#include "ldcf/serve/client.hpp"
#include "ldcf/serve/job.hpp"

namespace {

using ldcf::obs::JsonPtr;
using ldcf::obs::JsonValue;
using ldcf::obs::parse_json;
using ldcf::serve::Endpoint;
using ldcf::serve::FloodClient;
using ldcf::serve::FloodServer;
using ldcf::serve::ServerConfig;
using ldcf::serve::ServerStats;

ServerConfig local_config() {
  ServerConfig config;
  config.endpoint.host = "127.0.0.1";
  config.endpoint.port = 0;  // ephemeral; tests read server.port().
  return config;
}

Endpoint client_endpoint(const FloodServer& server) {
  Endpoint endpoint;
  endpoint.host = "127.0.0.1";
  endpoint.port = server.port();
  return endpoint;
}

/// The "report" value of a result frame, byte-exact. The frame tail is
/// "...,\"report\":<report>}", so the value is everything from the key to
/// the closing brace of the envelope.
std::string report_field(const std::string& result_frame) {
  const std::string key = "\"report\":";
  const std::size_t at = result_frame.find(key);
  EXPECT_NE(at, std::string::npos) << result_frame;
  if (at == std::string::npos) return {};
  return result_frame.substr(at + key.size(),
                             result_frame.size() - at - key.size() - 1);
}

TEST(FloodServerTest, PingPongAndStats) {
  FloodServer server(local_config());
  server.start();
  FloodClient client(client_endpoint(server));
  EXPECT_EQ(client.request("{\"op\":\"ping\"}")->str("type"), "pong");

  const JsonPtr stats = client.request("{\"op\":\"stats\"}");
  EXPECT_EQ(stats->str("type"), "stats");
  const JsonValue* jobs = stats->find("jobs");
  ASSERT_NE(jobs, nullptr);
  EXPECT_EQ(jobs->u64("accepted", 99), 0u);
  server.stop();
}

TEST(FloodServerTest, ResultMatchesDirectRunPointByteForByte) {
  const std::string config_json =
      R"({"protocol":"opt","sensors":40,"topology_seed":3,"reps":2,"seed":5})";

  FloodServer server(local_config());
  server.start();
  FloodClient client(client_endpoint(server));
  const std::string raw = client.submit_raw(config_json);
  server.stop();
  ASSERT_EQ(parse_json(raw)->str("type"), "result") << raw;

  // The same job executed directly, serialized the way the server does.
  const ldcf::serve::JobSpec spec =
      ldcf::serve::parse_job_spec(*parse_json(config_json));
  const ldcf::topology::Topology topo = ldcf::serve::build_topology(spec);
  const ldcf::analysis::ExperimentConfig experiment =
      ldcf::serve::make_experiment(spec);
  const ldcf::analysis::ProtocolPoint point = ldcf::analysis::run_point(
      topo, spec.protocol, ldcf::serve::spec_duty(spec), experiment);
  const std::vector<ldcf::analysis::ProtocolPoint> points{point};
  ldcf::analysis::SweepReportContext context;
  context.tool = "flood_server";
  context.topo = &topo;
  context.config = &experiment;
  context.points = &points;
  context.wall_seconds = 0.0;
  std::ostringstream direct;
  ldcf::analysis::write_sweep_report(direct, context);
  std::string expected = direct.str();
  while (!expected.empty() && expected.back() == '\n') expected.pop_back();

  EXPECT_EQ(report_field(raw), expected);
}

TEST(FloodServerTest, SoakRepeatedJobsHitTheCacheAndStayByteIdentical) {
  ServerConfig config = local_config();
  config.job_workers = 2;
  config.max_queued_jobs = 64;
  FloodServer server(config);
  server.start();

  const std::string config_json =
      R"({"protocol":"naive","sensors":30,"reps":2,"threads":2})";
  constexpr int kClients = 4;
  constexpr int kJobsPerClient = 3;
  std::vector<std::vector<std::string>> reports(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      FloodClient client(client_endpoint(server));
      for (int j = 0; j < kJobsPerClient; ++j) {
        const std::string raw = client.submit_raw(config_json);
        if (parse_json(raw)->str("type") == "result") {
          reports[static_cast<std::size_t>(c)].push_back(report_field(raw));
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  const ServerStats stats = server.stats();
  server.stop();

  // Every submission completed, and all reports are byte-identical.
  std::set<std::string> distinct;
  std::size_t total = 0;
  for (const auto& per_client : reports) {
    total += per_client.size();
    distinct.insert(per_client.begin(), per_client.end());
  }
  EXPECT_EQ(total, static_cast<std::size_t>(kClients * kJobsPerClient));
  EXPECT_EQ(distinct.size(), 1u);
  EXPECT_EQ(stats.jobs.completed,
            static_cast<std::uint64_t>(kClients * kJobsPerClient));

  // Identical jobs reuse artifacts: every kind shows cache hits.
  std::uint64_t hits = 0;
  for (const auto& kind : stats.cache.kinds) hits += kind.hits;
  EXPECT_GT(hits, 0u);
}

TEST(FloodServerTest, QueueFullRejection) {
  ServerConfig config = local_config();
  config.job_workers = 0;  // accept-only: the queue fills deterministically.
  config.max_queued_jobs = 2;
  FloodServer server(config);
  server.start();
  FloodClient client(client_endpoint(server));

  // The first two queue; each answers with an accepted frame.
  for (int i = 0; i < 2; ++i) {
    const JsonPtr reply =
        client.request(R"({"op":"submit","config":{"reps":1}})");
    EXPECT_EQ(reply->str("type"), "accepted");
  }
  const JsonPtr rejected =
      client.request(R"({"op":"submit","config":{"reps":1}})");
  EXPECT_EQ(rejected->str("type"), "rejected");
  EXPECT_EQ(rejected->str("code"), "queue_full");

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.jobs.accepted, 2u);
  EXPECT_EQ(stats.jobs.rejected, 1u);
  server.stop();
}

TEST(FloodServerTest, TooManyTrialsRejection) {
  ServerConfig config = local_config();
  config.job_workers = 0;
  config.max_trials_per_job = 4;
  FloodServer server(config);
  server.start();
  FloodClient client(client_endpoint(server));
  const JsonPtr reply =
      client.request(R"({"op":"submit","config":{"reps":5}})");
  EXPECT_EQ(reply->str("type"), "rejected");
  EXPECT_EQ(reply->str("code"), "too_many_trials");
  server.stop();
}

TEST(FloodServerTest, MalformedFramesGetRejectedNotFatal) {
  FloodServer server(local_config());
  server.start();
  FloodClient client(client_endpoint(server));

  const std::vector<std::string> bad_frames = {
      "this is not json",
      "{\"op\":\"warp\"}",
      "{\"no_op\":1}",
      R"({"op":"submit","config":{"sensor":500}})",
      R"({"op":"submit","config":{"protocol":"bogus"}})",
      R"({"op":"submit"})"};
  for (const std::string& frame : bad_frames) {
    SCOPED_TRACE(frame);
    const JsonPtr reply = client.request(frame);
    EXPECT_EQ(reply->str("type"), "rejected");
    EXPECT_EQ(reply->str("code"), "bad_request");
  }

  // The daemon survived all of it.
  EXPECT_EQ(client.request("{\"op\":\"ping\"}")->str("type"), "pong");
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.malformed_frames, 6u);
  EXPECT_EQ(stats.jobs.accepted, 0u);
  server.stop();
}

TEST(FloodServerTest, StopFlushesQueuedJobsWithShutdownErrors) {
  ServerConfig config = local_config();
  config.job_workers = 0;  // nothing ever runs; the queue holds the job.
  FloodServer server(config);
  server.start();

  // Raw socket so the frames after stop() can still be drained: stop()
  // writes the shutdown error before closing the connection, and the
  // bytes stay readable on the client side after the peer is gone.
  ldcf::serve::Socket sock =
      ldcf::serve::connect_to(client_endpoint(server));
  ASSERT_TRUE(ldcf::serve::send_all(
      sock.fd(), "{\"op\":\"submit\",\"config\":{\"reps\":1}}\n"));
  ldcf::serve::LineReader reader(sock.fd());
  std::string line;
  ASSERT_TRUE(reader.next_line(line));
  ASSERT_EQ(parse_json(line)->str("type"), "accepted");

  server.stop();
  ASSERT_TRUE(reader.next_line(line));
  const JsonPtr error = parse_json(line);
  EXPECT_EQ(error->str("type"), "error");
  EXPECT_EQ(error->str("code"), "shutdown");
  EXPECT_EQ(server.stats().jobs.failed, 1u);
}

TEST(FloodServerTest, StatsFileIsValidJson) {
  FloodServer server(local_config());
  server.start();
  FloodClient client(client_endpoint(server));
  (void)client.request("{\"op\":\"ping\"}");
  server.stop();

  const std::string path = ::testing::TempDir() + "ldcf_server_stats.json";
  server.write_stats_file(path);
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const JsonPtr doc = parse_json(buffer.str());
  EXPECT_EQ(doc->str("schema"), "ldcf.server_stats.v1");
  EXPECT_EQ(doc->u64("connections", 0), 1u);
  std::remove(path.c_str());
}

}  // namespace
