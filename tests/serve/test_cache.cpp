// ArtifactCache (serve/cache.hpp): LRU byte budget, per-kind counters,
// single-flight builds, and eviction that never kills an in-use artifact.
#include "ldcf/serve/cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace {

using ldcf::serve::ArtifactCache;
using ldcf::serve::CacheKindStats;
using ldcf::serve::CacheStats;
using ldcf::serve::fnv1a;
using ldcf::serve::fnv1a_mix;

const CacheKindStats* kind_stats(const CacheStats& stats,
                                 const std::string& kind) {
  for (const CacheKindStats& k : stats.kinds) {
    if (k.kind == kind) return &k;
  }
  return nullptr;
}

TEST(Fnv1a, MatchesKnownVectors) {
  // FNV-1a 64-bit reference values.
  EXPECT_EQ(fnv1a("", 0), 14695981039346656037ull);
  EXPECT_EQ(fnv1a("a", 1), 12638187200555641996ull);
  EXPECT_EQ(fnv1a("foobar", 6), 9625390261332436968ull);
}

TEST(Fnv1a, MixIsOrderSensitive) {
  const std::uint64_t a = fnv1a_mix(fnv1a_mix(fnv1a("k", 1), 1), 2);
  const std::uint64_t b = fnv1a_mix(fnv1a_mix(fnv1a("k", 1), 2), 1);
  EXPECT_NE(a, b);
}

TEST(ArtifactCacheTest, HitAfterMissReturnsTheSameObject) {
  ArtifactCache cache(1 << 20);
  int builds = 0;
  const auto make = [&] {
    ++builds;
    return 42;
  };
  const auto bytes = [](const int&) { return std::size_t{100}; };
  const auto first = cache.get<int>("num", 1, make, bytes);
  const auto second = cache.get<int>("num", 1, make, bytes);
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(*first, 42);

  const CacheStats stats = cache.stats();
  const CacheKindStats* num = kind_stats(stats, "num");
  ASSERT_NE(num, nullptr);
  EXPECT_EQ(num->hits, 1u);
  EXPECT_EQ(num->misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes_in_use, 100u);
}

TEST(ArtifactCacheTest, DistinctKindsDoNotCollide) {
  ArtifactCache cache(1 << 20);
  const auto bytes = [](const int&) { return std::size_t{8}; };
  const auto a = cache.get<int>("alpha", 7, [] { return 1; }, bytes);
  const auto b = cache.get<int>("beta", 7, [] { return 2; }, bytes);
  EXPECT_EQ(*a, 1);
  EXPECT_EQ(*b, 2);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(ArtifactCacheTest, LruEvictionRespectsTheBudgetAndRecency) {
  ArtifactCache cache(250);
  const auto bytes = [](const int&) { return std::size_t{100}; };
  int builds = 0;
  const auto build = [&](int v) {
    return [&builds, v] {
      ++builds;
      return v;
    };
  };
  (void)cache.get<int>("num", 1, build(1), bytes);
  (void)cache.get<int>("num", 2, build(2), bytes);
  (void)cache.get<int>("num", 1, build(1), bytes);  // touch 1: now MRU.
  (void)cache.get<int>("num", 3, build(3), bytes);  // 300 bytes: evict LRU=2.
  EXPECT_EQ(builds, 3);

  (void)cache.get<int>("num", 1, build(1), bytes);  // still cached.
  EXPECT_EQ(builds, 3);
  (void)cache.get<int>("num", 2, build(2), bytes);  // was evicted: rebuild.
  EXPECT_EQ(builds, 4);

  const CacheKindStats* num = kind_stats(cache.stats(), "num");
  ASSERT_NE(num, nullptr);
  EXPECT_GE(num->evictions, 1u);
}

TEST(ArtifactCacheTest, EvictedEntriesStayAliveWhileReferenced) {
  ArtifactCache cache(100);
  const auto bytes = [](const std::string&) { return std::size_t{100}; };
  const auto held = cache.get<std::string>(
      "blob", 1, [] { return std::string("survivor"); }, bytes);
  // Inserting a second full-budget entry evicts the first from the cache,
  // but the shared_ptr keeps the artifact itself alive.
  (void)cache.get<std::string>("blob", 2, [] { return std::string("next"); },
                               bytes);
  EXPECT_EQ(*held, "survivor");
  EXPECT_LE(cache.stats().bytes_in_use, 200u);
}

TEST(ArtifactCacheTest, OversizedArtifactIsStillUsable) {
  ArtifactCache cache(10);  // budget smaller than any entry.
  const auto bytes = [](const int&) { return std::size_t{1000}; };
  const auto a = cache.get<int>("big", 1, [] { return 5; }, bytes);
  EXPECT_EQ(*a, 5);
  // A hit right away is allowed (the entry survives until the next
  // insert); correctness never depends on it staying cached.
  const auto b = cache.get<int>("big", 1, [] { return 6; }, bytes);
  EXPECT_EQ(*b, 5);
}

TEST(ArtifactCacheTest, FailedBuildPropagatesAndRetries) {
  ArtifactCache cache(1 << 20);
  const auto bytes = [](const int&) { return std::size_t{8}; };
  bool first = true;
  const auto flaky = [&] {
    if (first) {
      first = false;
      throw std::runtime_error("transient");
    }
    return 9;
  };
  EXPECT_THROW((void)cache.get<int>("num", 1, flaky, bytes),
               std::runtime_error);
  const auto value = cache.get<int>("num", 1, flaky, bytes);
  EXPECT_EQ(*value, 9);
}

TEST(ArtifactCacheTest, ConcurrentFetchesAreSingleFlight) {
  ArtifactCache cache(1 << 20);
  std::atomic<int> builds{0};
  const auto make = [&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ++builds;
    return 123;
  };
  const auto bytes = [](const int&) { return std::size_t{8}; };
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const int>> results(8);
  for (std::size_t i = 0; i < results.size(); ++i) {
    threads.emplace_back(
        [&, i] { results[i] = cache.get<int>("num", 1, make, bytes); });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(builds.load(), 1);
  for (const auto& result : results) {
    ASSERT_NE(result, nullptr);
    EXPECT_EQ(*result, 123);
    EXPECT_EQ(result.get(), results[0].get());
  }
}

}  // namespace
