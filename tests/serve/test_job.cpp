// JobSpec parsing and fingerprinting (serve/job.hpp): strict request
// validation and the canonical-rendering fingerprint the cache keys on.
#include "ldcf/serve/job.hpp"

#include <gtest/gtest.h>

#include <string>

#include "ldcf/common/error.hpp"
#include "ldcf/obs/json_reader.hpp"

namespace {

using ldcf::InvalidArgument;
using ldcf::obs::parse_json;
using ldcf::serve::canonical_spec_json;
using ldcf::serve::JobSpec;
using ldcf::serve::parse_job_spec;
using ldcf::serve::spec_fingerprint;
using ldcf::serve::topology_key;

JobSpec parse(const std::string& json) {
  return parse_job_spec(*parse_json(json));
}

TEST(ParseJobSpec, EmptyObjectYieldsDefaults) {
  const JobSpec spec = parse("{}");
  const JobSpec defaults;
  EXPECT_EQ(spec.protocol, defaults.protocol);
  EXPECT_EQ(spec.generator, defaults.generator);
  EXPECT_EQ(spec.sensors, defaults.sensors);
  EXPECT_EQ(spec.reps, defaults.reps);
  EXPECT_EQ(canonical_spec_json(spec), canonical_spec_json(defaults));
}

TEST(ParseJobSpec, ReadsEveryField) {
  const JobSpec spec = parse(
      R"({"protocol":"opt","generator":"uniform","sensors":80,
          "topology_seed":9,"duty_pct":10.0,"slots_per_period":2,
          "num_packets":5,"packet_spacing":3,"seed":77,"max_slots":1000,
          "coverage_fraction":0.9,"reps":4,"threads":2,
          "collect_stats":true})");
  EXPECT_EQ(spec.protocol, "opt");
  EXPECT_EQ(spec.generator, "uniform");
  EXPECT_EQ(spec.sensors, 80u);
  EXPECT_EQ(spec.topology_seed, 9u);
  EXPECT_DOUBLE_EQ(spec.duty_pct, 10.0);
  EXPECT_EQ(spec.slots_per_period, 2u);
  EXPECT_EQ(spec.num_packets, 5u);
  EXPECT_EQ(spec.packet_spacing, 3u);
  EXPECT_EQ(spec.seed, 77u);
  EXPECT_EQ(spec.max_slots, 1000u);
  EXPECT_DOUBLE_EQ(spec.coverage_fraction, 0.9);
  EXPECT_EQ(spec.reps, 4u);
  EXPECT_EQ(spec.threads, 2u);
  EXPECT_TRUE(spec.collect_stats);
}

TEST(ParseJobSpec, RejectsUnknownKeys) {
  // The reason strictness exists: "sensor" must not silently run the
  // default network.
  EXPECT_THROW((void)parse(R"({"sensor":500})"), InvalidArgument);
  EXPECT_THROW((void)parse(R"({"Protocol":"opt"})"), InvalidArgument);
}

TEST(ParseJobSpec, RejectsBadValues) {
  EXPECT_THROW((void)parse(R"({"protocol":"bogus"})"), InvalidArgument);
  EXPECT_THROW((void)parse(R"({"generator":"torus"})"), InvalidArgument);
  EXPECT_THROW((void)parse(R"({"sensors":1})"), InvalidArgument);
  EXPECT_THROW((void)parse(R"({"reps":0})"), InvalidArgument);
  EXPECT_THROW((void)parse(R"({"reps":-1})"), InvalidArgument);
  EXPECT_THROW((void)parse(R"({"duty_pct":0})"), InvalidArgument);
  EXPECT_THROW((void)parse(R"({"duty_pct":150})"), InvalidArgument);
  EXPECT_THROW((void)parse(R"({"coverage_fraction":1.5})"), InvalidArgument);
  EXPECT_THROW((void)parse(R"({"collect_stats":"yes"})"), InvalidArgument);
  EXPECT_THROW((void)parse(R"({"sensors":"sixty"})"), InvalidArgument);
  EXPECT_THROW((void)parse(R"([1,2,3])"), InvalidArgument);
}

TEST(SpecFingerprint, SpelledOutDefaultsHashIdentically) {
  // A sparse frame and one spelling out the defaults describe the same
  // experiment, so they must share a fingerprint (and cache entries).
  const JobSpec sparse = parse(R"({"protocol":"opt"})");
  const JobSpec spelled = parse(
      R"({"protocol":"opt","generator":"clustered","sensors":60,
          "duty_pct":5.0,"reps":1,"seed":1})");
  EXPECT_EQ(spec_fingerprint(sparse), spec_fingerprint(spelled));
}

TEST(SpecFingerprint, ThreadsDoNotSplitTheFingerprint) {
  // The executor is bit-identical for every thread count, so thread count
  // is not part of the experiment's identity.
  const JobSpec one = parse(R"({"protocol":"opt","threads":1})");
  const JobSpec eight = parse(R"({"protocol":"opt","threads":8})");
  EXPECT_EQ(spec_fingerprint(one), spec_fingerprint(eight));
}

TEST(SpecFingerprint, ResultFieldsDoSplitIt) {
  const JobSpec base = parse("{}");
  for (const std::string frame :
       {R"({"seed":2})", R"({"reps":2})", R"({"duty_pct":10})",
        R"({"protocol":"opt"})", R"({"sensors":61})"}) {
    SCOPED_TRACE(frame);
    EXPECT_NE(spec_fingerprint(base), spec_fingerprint(parse(frame)));
  }
}

TEST(TopologyKey, DependsOnlyOnGeneratorInputs) {
  const JobSpec base = parse("{}");
  // Simulation-side fields share the topology.
  EXPECT_EQ(topology_key(base), topology_key(parse(R"({"seed":99})")));
  EXPECT_EQ(topology_key(base), topology_key(parse(R"({"protocol":"opt"})")));
  // Generator inputs split it.
  EXPECT_NE(topology_key(base), topology_key(parse(R"({"sensors":61})")));
  EXPECT_NE(topology_key(base),
            topology_key(parse(R"({"topology_seed":2})")));
  EXPECT_NE(topology_key(base),
            topology_key(parse(R"({"generator":"uniform"})")));
}

TEST(BuildTopology, IsDeterministicInItsKey) {
  const JobSpec spec = parse(R"({"generator":"uniform","sensors":30})");
  const ldcf::topology::Topology a = ldcf::serve::build_topology(spec);
  const ldcf::topology::Topology b = ldcf::serve::build_topology(spec);
  EXPECT_EQ(a.num_nodes(), b.num_nodes());
  EXPECT_EQ(a.num_links(), b.num_links());
}

TEST(MakeExperiment, ForcesProfilingOff) {
  const JobSpec spec = parse(R"({"reps":3,"threads":2})");
  const ldcf::analysis::ExperimentConfig experiment =
      ldcf::serve::make_experiment(spec);
  EXPECT_FALSE(experiment.base.profiling);
  EXPECT_EQ(experiment.repetitions, 3u);
  EXPECT_EQ(experiment.threads, 2u);
}

}  // namespace
